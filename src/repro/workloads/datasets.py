"""Dataset generators mirroring the paper's experimental setup.

Section 6: "we used a dataset with 6 million randomly generated spatial
objects in a 2-dimensional space.  Each side of an object MBR is on
average 1/10,000 of the total dimension size."  :func:`uniform_boxes` is
that generator (with the count and side fraction as knobs); the clustered
and Zipf variants provide the skewed workloads used by the extra
robustness experiments.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..core.geometry import Box
from ..core.polynomial import Polynomial

_Object = Tuple[Box, float]


def uniform_boxes(
    n: int,
    dims: int = 2,
    avg_side_fraction: float = 1e-4,
    span: float = 1.0,
    value_range: Tuple[float, float] = (0.0, 100.0),
    seed: int = 0,
) -> List[_Object]:
    """The paper's dataset: uniform rectangles with a target average side.

    Sides are drawn uniformly from ``(0, 2 * avg_side_fraction * span)`` so
    their mean matches the paper's "on average 1/10,000 of the total
    dimension size"; centers are uniform with boxes clamped inside the
    ``[0, span]^dims`` space.
    """
    rng = random.Random(seed)
    max_side = 2.0 * avg_side_fraction * span
    objects: List[_Object] = []
    for _ in range(n):
        sides = [rng.uniform(0.0, max_side) for _ in range(dims)]
        low = [rng.uniform(0.0, span - s) for s in sides]
        high = [lo + s for lo, s in zip(low, sides)]
        value = rng.uniform(*value_range)
        objects.append((Box(low, high), value))
    return objects


def clustered_boxes(
    n: int,
    dims: int = 2,
    n_clusters: int = 20,
    cluster_sigma_fraction: float = 0.01,
    avg_side_fraction: float = 1e-4,
    span: float = 1.0,
    value_range: Tuple[float, float] = (0.0, 100.0),
    seed: int = 0,
) -> List[_Object]:
    """Gaussian-cluster skew: objects huddle around ``n_clusters`` hot spots."""
    rng = random.Random(seed)
    sigma = cluster_sigma_fraction * span
    max_side = 2.0 * avg_side_fraction * span
    centers = [
        tuple(rng.uniform(0.1 * span, 0.9 * span) for _ in range(dims))
        for _ in range(n_clusters)
    ]
    objects: List[_Object] = []
    for _ in range(n):
        center = centers[rng.randrange(n_clusters)]
        sides = [rng.uniform(0.0, max_side) for _ in range(dims)]
        low = []
        for c, s in zip(center, sides):
            lo = min(max(rng.gauss(c, sigma), 0.0), span - s)
            low.append(lo)
        high = [lo + s for lo, s in zip(low, sides)]
        objects.append((Box(low, high), rng.uniform(*value_range)))
    return objects


def zipf_weighted_boxes(
    n: int,
    dims: int = 2,
    zipf_s: float = 1.2,
    avg_side_fraction: float = 1e-4,
    span: float = 1.0,
    seed: int = 0,
) -> List[_Object]:
    """Uniform boxes with heavy-tailed (Zipf-ranked) weights."""
    objects = uniform_boxes(n, dims, avg_side_fraction, span, value_range=(1.0, 1.0), seed=seed)
    rng = random.Random(seed + 1)
    weighted: List[_Object] = []
    for box, _one in objects:
        rank = rng.randint(1, n)
        weighted.append((box, 1.0 / rank**zipf_s))
    return weighted


def functional_objects(
    n: int,
    degree: int,
    dims: int = 2,
    avg_side_fraction: float = 1e-4,
    span: float = 1.0,
    seed: int = 0,
) -> List[Tuple[Box, Polynomial]]:
    """Objects with polynomial value functions of the requested total degree.

    ``degree=0`` reproduces the paper's first Figure 9c variation ("the
    value of each object was treated as a constant function"); ``degree=2``
    the second ("objects were assigned polynomial functions of degree two").
    Coefficients of higher-order terms are damped so integrals stay
    numerically tame over the unit space.
    """
    rng = random.Random(seed)
    base = uniform_boxes(n, dims, avg_side_fraction, span, seed=seed)
    objects: List[Tuple[Box, Polynomial]] = []
    for box, value in base:
        f = Polynomial.constant(dims, value)
        if degree >= 1:
            for i in range(dims):
                f = f + Polynomial.variable(dims, i).scale(rng.uniform(-1.0, 1.0))
        if degree >= 2:
            for i in range(dims):
                for j in range(i, dims):
                    exps = [0] * dims
                    exps[i] += 1
                    exps[j] += 1
                    f = f + Polynomial.monomial(dims, exps, rng.uniform(-0.5, 0.5))
        objects.append((box, f))
    return objects
