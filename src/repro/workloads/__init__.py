"""Workload generators: datasets and query batches for the experiments."""

from .datasets import (
    clustered_boxes,
    functional_objects,
    uniform_boxes,
    zipf_weighted_boxes,
)
from .queries import hot_query_boxes, hotspot_boxes, query_boxes, query_points

__all__ = [
    "uniform_boxes",
    "clustered_boxes",
    "zipf_weighted_boxes",
    "functional_objects",
    "hot_query_boxes",
    "hotspot_boxes",
    "query_boxes",
    "query_points",
]
