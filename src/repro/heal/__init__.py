"""Self-healing: automatic detection, repair, and convergence under chaos.

:class:`~repro.heal.supervisor.HealSupervisor` closes the loop the
resilience and replication layers left open — it *notices* failures
(poisoned members, dead worker processes, tripped breakers, silently
diverged replicas caught by the stream-digest audit), *repairs* them
through the existing verbs (probe, ``restart`` + catch-up, checkpoint
restore, member replacement) with seeded jittered backoff, and *verifies*
every repair through the group's bit-exactness audit before the member
serves again.  Members whose repairs keep failing are quarantined, never
thrashed.  :class:`~repro.heal.policy.HealPolicy` holds the knobs;
:mod:`~repro.heal.model` defines the derived health states.
"""

from .model import (
    HEALTHY,
    QUARANTINED,
    REPAIRING,
    STATES,
    SUSPECT,
    ComponentHealth,
    HealEvent,
    HealReport,
)
from .policy import HealPolicy
from .supervisor import HealSupervisor

__all__ = [
    "HEALTHY",
    "SUSPECT",
    "REPAIRING",
    "QUARANTINED",
    "STATES",
    "ComponentHealth",
    "HealEvent",
    "HealReport",
    "HealPolicy",
    "HealSupervisor",
]
