"""``HealSupervisor``: the closed detect → repair → verify loop.

Serving already *contains* every repair verb this package needs — breaker
probing, ``catch_up`` restores, worker ``restart()``, ``add_member``
bootstrap — but until now a human had to notice the failure and invoke
the right one.  The supervisor closes that loop: each tick it derives the
health model from live signals (poisoning flags, process liveness,
breaker states, replica lag), audits the members' stream digests against
the replication log, and drives the matching remedy through a prioritized
repair queue with seeded jittered exponential backoff.  Repairs that keep
failing quarantine the member (crash-loop detection) instead of spinning;
quarantine is terminal for the supervisor and loud for the operator.

Exactness is never traded for availability: every repair path ends in the
group's own bit-exactness audit (seeded probes compared with ``==``), and
a member the digest audit catches diverging is poisoned *before* any
query can fail over onto it.  The supervisor only ever converges the
cluster back to the state the replication log defines.

Time is injectable (``clock``/``sleep``) so chaos-soak tests run in
virtual time; production uses :meth:`start`/:meth:`stop` for a wall-clock
daemon thread, typically via ``ShardedService(heal=HealPolicy(...))``.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from ..core.errors import NotSupportedError
from ..core.geometry import Box
from ..obs import trace as _trace
from ..obs.registry import MetricsRegistry, get_registry
from ..resilience.breaker import FORCED_OPEN, HALF_OPEN, OPEN
from .model import (
    HEALTHY,
    QUARANTINED,
    REPAIRING,
    STATES,
    SUSPECT,
    ComponentHealth,
    HealEvent,
    HealReport,
)
from .policy import HealPolicy

#: A member's address: ``(shard id, member id)``.
_Key = Tuple[int, int]


class _RepairState:
    """Per-member repair bookkeeping: attempts, backoff, failure times."""

    __slots__ = ("attempts", "next_due", "failures")

    def __init__(self) -> None:
        self.attempts = 0
        self.next_due = 0.0
        self.failures: Deque[float] = deque()


class HealSupervisor:
    """Automatic detection, repair and convergence for a sharded cluster.

    Parameters
    ----------
    cluster:
        The :class:`~repro.shard.cluster.ShardedService` to supervise.
        Replicated clusters heal at the member level (poisoning, digest
        divergence, breaker trips, dead worker processes); unreplicated
        clusters heal crashed process workers through
        :meth:`~repro.shard.cluster.ShardedService.restart_worker`.
    policy:
        The :class:`~repro.heal.policy.HealPolicy` (defaults apply).
    clock / sleep:
        Injectable time sources.  Tests drive the loop in virtual time;
        production leaves the defaults and uses :meth:`start`.
    """

    def __init__(
        self,
        cluster,
        policy: Optional[HealPolicy] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        label: str = "heal",
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.cluster = cluster
        self.policy = policy if policy is not None else HealPolicy()
        self.label = label
        self._clock = clock
        self._sleep = sleep
        self._rng = random.Random(self.policy.seed * 9_176_867 + 1)
        # Reentrant: _publish derives health under the same lock tick holds.
        self._lock = threading.RLock()
        self._ticks = 0
        self._repairs: Dict[_Key, _RepairState] = {}
        self._quarantined: Set[_Key] = set()
        self._quarantine_reasons: Dict[_Key, str] = {}
        self._events: Deque[HealEvent] = deque(maxlen=256)
        self._counts: Dict[str, float] = {
            "ticks": 0.0,
            "tick_errors": 0.0,
            "audits": 0.0,
            "diverged": 0.0,
            "repairs_ok": 0.0,
            "repairs_failed": 0.0,
            "quarantines": 0.0,
            "probes_ok": 0.0,
            "probes_failed": 0.0,
            "members_added": 0.0,
        }
        registry = registry if registry is not None else get_registry()
        self._m_ticks = registry.counter(
            "repro_heal_ticks", "supervisor ticks, by outcome (ok/error)"
        )
        self._m_repairs = registry.counter(
            "repro_heal_repairs", "repair attempts, by outcome (ok/failed)"
        )
        self._m_quarantines = registry.counter(
            "repro_heal_quarantines", "members quarantined after exhausted repairs"
        )
        self._m_probes = registry.counter(
            "repro_heal_probes", "health probes at breaker-gated members, by outcome"
        )
        self._m_members = registry.gauge(
            "repro_heal_members", "cluster members, by derived health state"
        )
        self._m_converged = registry.gauge(
            "repro_heal_converged", "1 when no member is suspect or repairing"
        )
        #: Degenerate seeded probe query: the answer's value is irrelevant,
        #: only that the member computes one without raising.
        self._probe_box = Box([0.0] * cluster.dims, [0.0] * cluster.dims)
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()

    # -- health derivation -------------------------------------------------------------

    def health(self) -> List[ComponentHealth]:
        """Derived health of every member, in (shard, member) order."""
        with self._lock:
            out: List[ComponentHealth] = []
            groups = self.cluster.groups
            if groups:
                for sid, group in enumerate(groups):
                    for mid in range(len(group.members)):
                        out.append(self._component(sid, mid, group, group.members[mid]))
            else:
                for sid, shard in enumerate(self.cluster.services):
                    out.append(self._component(sid, 0, None, shard))
            return out

    def _component(self, sid: int, mid: int, group, member) -> ComponentHealth:
        key = (sid, mid)
        lag = group.replica_lag(mid) if group is not None else 0
        state = self._repairs.get(key)
        attempts = state.attempts if state is not None else 0
        if key in self._quarantined:
            return ComponentHealth(
                sid, mid, QUARANTINED, self._quarantine_reasons.get(key, ""), attempts, lag
            )
        crashed = bool(getattr(member, "crashed", False))
        poisoned = group.is_poisoned(mid) if group is not None else False
        if poisoned or crashed:
            reason = "worker process dead" if crashed else "poisoned (excluded from rotation)"
            return ComponentHealth(
                sid, mid, REPAIRING if attempts else SUSPECT, reason, attempts, lag
            )
        if group is not None and group.breakers[mid].state in (OPEN, HALF_OPEN, FORCED_OPEN):
            return ComponentHealth(
                sid, mid, SUSPECT, f"breaker {group.breakers[mid].state}", attempts, lag
            )
        return ComponentHealth(sid, mid, HEALTHY, "", attempts, lag)

    @property
    def converged(self) -> bool:
        """True when no member needs the supervisor (quarantine tolerated)."""
        return all(c.state not in (SUSPECT, REPAIRING) for c in self.health())

    @property
    def fully_healthy(self) -> bool:
        """True when every member is HEALTHY (no quarantine either)."""
        return all(c.state == HEALTHY for c in self.health())

    def quarantined(self) -> Tuple[_Key, ...]:
        """``(shard, member)`` pairs the supervisor has given up on."""
        with self._lock:
            return tuple(sorted(self._quarantined))

    # -- the tick ----------------------------------------------------------------------

    def tick(self) -> List[HealEvent]:
        """One detect → repair pass; returns the events it generated."""
        with self._lock:
            self._ticks += 1
            self._counts["ticks"] += 1
            events: List[HealEvent] = []
            if (
                self.policy.audit_every_ticks
                and self._ticks % self.policy.audit_every_ticks == 0
            ):
                self._audit(events)
            self._heal_groups(events)
            self._heal_workers(events)
            self._publish()
            self._m_ticks.inc(outcome="ok", label=self.label)
            for event in events:
                self._events.append(event)
            return events

    def _audit(self, events: List[HealEvent]) -> None:
        """Cross-member divergence audit: stream digests vs the authority."""
        self._counts["audits"] += 1
        for sid, group in enumerate(self.cluster.groups):
            for mid in group.audit_digests():
                self._counts["diverged"] += 1
                events.append(
                    HealEvent(
                        "diverged",
                        sid,
                        mid,
                        "stream digest diverged from authority; member poisoned",
                        self._ticks,
                    )
                )

    def _heal_groups(self, events: List[HealEvent]) -> None:
        for sid, group in enumerate(self.cluster.groups):
            for mid in range(len(group.members)):
                key = (sid, mid)
                if key in self._quarantined:
                    continue
                member = group.members[mid]
                crashed = bool(getattr(member, "crashed", False))
                if group.is_poisoned(mid) or crashed:
                    self._attempt_repair(
                        key, events, lambda: group.repair(
                            mid, audit_probes=self.policy.audit_probes
                        ),
                        group=group,
                    )
                elif group.breakers[mid].state in (OPEN, HALF_OPEN, FORCED_OPEN):
                    # OPEN inside the cooldown and FORCED_OPEN refuse the
                    # probe at allow(); half-open is where it lands.
                    if self.policy.probe_suspects:
                        self._probe(key, group, member, events)
                else:
                    # Healthy again (possibly via an operator verb): any
                    # stale backoff state would slow the *next* incident.
                    self._repairs.pop(key, None)

    def _heal_workers(self, events: List[HealEvent]) -> None:
        """Unreplicated clusters: respawn + restore crashed process workers."""
        if self.cluster.groups:
            return
        for sid, shard in enumerate(self.cluster.services):
            key = (sid, 0)
            if key in self._quarantined:
                continue
            if bool(getattr(shard, "crashed", False)):
                self._attempt_repair(
                    key, events, lambda: self.cluster.restart_worker(sid), group=None
                )
            else:
                self._repairs.pop(key, None)

    def _attempt_repair(
        self, key: _Key, events: List[HealEvent], repair: Callable[[], object], *, group
    ) -> None:
        sid, mid = key
        state = self._repairs.setdefault(key, _RepairState())
        now = self._clock()
        if now < state.next_due:
            return
        state.attempts += 1
        tracer = _trace._ACTIVE
        try:
            repair()
        except NotSupportedError as exc:
            # No log to restore from (or no way to respawn): retrying can
            # never succeed, so quarantine immediately rather than loop.
            self._quarantine(key, group, f"repair impossible: {exc}", events)
        except Exception as exc:  # noqa: BLE001 — any repair failure backs off
            state.failures.append(now)
            while len(state.failures) > self.policy.max_repair_attempts:
                state.failures.popleft()
            self._counts["repairs_failed"] += 1
            self._m_repairs.inc(outcome="failed", label=self.label)
            events.append(
                HealEvent(
                    "repair_failed",
                    sid,
                    mid,
                    f"attempt {state.attempts}: {type(exc).__name__}: {exc}",
                    self._ticks,
                )
            )
            if tracer is not None:
                tracer.event(
                    "heal_repair_failed",
                    shard=sid,
                    member=mid,
                    attempt=state.attempts,
                    error=type(exc).__name__,
                )
            if (
                len(state.failures) >= self.policy.max_repair_attempts
                and now - state.failures[0] <= self.policy.failure_window_s
            ):
                self._quarantine(
                    key,
                    group,
                    f"crash loop: {len(state.failures)} failed repairs within "
                    f"{self.policy.failure_window_s}s",
                    events,
                )
            else:
                state.next_due = now + self._backoff(state.attempts)
        else:
            attempts = state.attempts
            self._repairs.pop(key, None)
            self._counts["repairs_ok"] += 1
            self._m_repairs.inc(outcome="ok", label=self.label)
            events.append(
                HealEvent(
                    "repaired", sid, mid, f"repaired on attempt {attempts}", self._ticks
                )
            )
            if tracer is not None:
                tracer.event("heal_repaired", shard=sid, member=mid, attempts=attempts)

    def _probe(self, key: _Key, group, member, events: List[HealEvent]) -> None:
        """One seeded health probe through the member's breaker.

        Breakers close only through observed traffic; an idle cluster
        would leave a recovered member gated forever.  The probe respects
        ``allow()`` (so FORCED_OPEN members stay untouched) and records
        its outcome, walking the breaker through half-open to closed.
        """
        sid, mid = key
        breaker = group.breakers[mid]
        if not breaker.allow():
            return
        try:
            ping = getattr(member, "ping", None)
            if ping is not None:
                ping()
            else:
                member.box_sum_batch([self._probe_box])
        except Exception as exc:  # noqa: BLE001 — a failed probe keeps it gated
            breaker.record_failure()
            self._counts["probes_failed"] += 1
            self._m_probes.inc(outcome="failed", label=self.label)
            events.append(
                HealEvent(
                    "probe_failed",
                    sid,
                    mid,
                    f"{type(exc).__name__}: {exc}",
                    self._ticks,
                )
            )
        else:
            breaker.record_success()
            self._counts["probes_ok"] += 1
            self._m_probes.inc(outcome="ok", label=self.label)
            events.append(HealEvent("probe_ok", sid, mid, "", self._ticks))

    def _quarantine(self, key: _Key, group, reason: str, events: List[HealEvent]) -> None:
        sid, mid = key
        self._quarantined.add(key)
        self._quarantine_reasons[key] = reason
        self._repairs.pop(key, None)
        if group is not None:
            # Poisoned members are already excluded; forcing the breaker
            # open too makes quarantine visible in the breaker state and
            # covers the (operator-revived, still-broken) edge.
            group.breakers[mid].force_open()
        self._counts["quarantines"] += 1
        self._m_quarantines.inc(label=self.label)
        events.append(HealEvent("quarantined", sid, mid, reason, self._ticks))
        tracer = _trace._ACTIVE
        if tracer is not None:
            tracer.event("heal_quarantined", shard=sid, member=mid, reason=reason)
        if group is not None and self.policy.replace_quarantined:
            try:
                new_mid = group.add_member()
            except NotSupportedError:
                return
            self._counts["members_added"] += 1
            events.append(
                HealEvent(
                    "member_added",
                    sid,
                    new_mid,
                    f"replacement for quarantined member {mid}",
                    self._ticks,
                )
            )

    def _backoff(self, attempt: int) -> float:
        policy = self.policy
        base = min(
            policy.backoff_max_s,
            policy.backoff_base_s * (policy.backoff_multiplier ** (attempt - 1)),
        )
        return base * (1.0 + policy.backoff_jitter * self._rng.uniform(-1.0, 1.0))

    def _publish(self) -> None:
        counts = {state: 0 for state in STATES}
        for component in self.health():
            counts[component.state] += 1
        for state, count in counts.items():
            self._m_members.set(float(count), state=state, label=self.label)
        suspect = counts[SUSPECT] + counts[REPAIRING]
        self._m_converged.set(0.0 if suspect else 1.0, label=self.label)

    # -- convergence loop ---------------------------------------------------------------

    def run_until_converged(self, budget_s: Optional[float] = None) -> HealReport:
        """Tick until converged or the repair budget runs out.

        The loop sleeps ``tick_interval_s`` between ticks through the
        injected ``sleep``, so virtual-time tests converge instantly.
        Returns a :class:`~repro.heal.model.HealReport` either way — the
        caller asserts on ``converged``/``fully_healthy``.
        """
        budget = budget_s if budget_s is not None else self.policy.repair_budget_s
        start = self._clock()
        ticks0 = self._ticks
        with self._lock:
            repairs0 = self._counts["repairs_ok"]
            quarantines0 = self._counts["quarantines"]
        while True:
            self.tick()
            if self.converged:
                break
            if self._clock() - start >= budget:
                break
            self._sleep(self.policy.tick_interval_s)
        counts = {state: 0 for state in STATES}
        for component in self.health():
            counts[component.state] += 1
        with self._lock:
            return HealReport(
                converged=self.converged,
                fully_healthy=self.fully_healthy,
                ticks=self._ticks - ticks0,
                elapsed_s=self._clock() - start,
                repairs=int(self._counts["repairs_ok"] - repairs0),
                quarantines=int(self._counts["quarantines"] - quarantines0),
                states=counts,
                quarantined=tuple(sorted(self._quarantined)),
            )

    # -- wall-clock daemon --------------------------------------------------------------

    def start(self) -> None:
        """Run :meth:`tick` every ``tick_interval_s`` on a daemon thread."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-heal-{self.label}", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop_event.wait(self.policy.tick_interval_s):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 — the healer must outlive its patients
                with self._lock:
                    self._counts["tick_errors"] += 1
                self._m_ticks.inc(outcome="error", label=self.label)

    def stop(self, timeout: Optional[float] = 5.0) -> bool:
        """Stop the daemon thread; idempotent, safe before :meth:`start`.

        Returns True once the thread is gone; False when it failed to
        join within ``timeout`` (the stop flag stays set — retry).
        """
        thread = self._thread
        if thread is None:
            return True
        self._stop_event.set()
        thread.join(timeout)
        if thread.is_alive():
            return False
        self._thread = None
        return True

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- observability ------------------------------------------------------------------

    def events(self) -> List[HealEvent]:
        """The most recent supervisor events (bounded, oldest first)."""
        with self._lock:
            return list(self._events)

    def stats(self) -> Dict[str, object]:
        """Counters plus the derived state histogram and quarantine list."""
        with self._lock:
            out: Dict[str, object] = dict(self._counts)
            counts = {state: 0 for state in STATES}
            for component in self.health():
                counts[component.state] += 1
            out["states"] = counts
            out["quarantined"] = sorted(self._quarantined)
            out["converged"] = not (counts[SUSPECT] or counts[REPAIRING])
            out["fully_healthy"] = counts[HEALTHY] == sum(counts.values())
            out["running"] = self.running
            return out

    def __enter__(self) -> "HealSupervisor":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()


__all__ = ["HealSupervisor"]
