"""The supervisor's knobs, as one validated frozen dataclass."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HealPolicy:
    """How aggressively the supervisor detects, repairs, and gives up.

    Parameters
    ----------
    tick_interval_s:
        Seconds between supervisor ticks (wall-clock thread) and between
        convergence-loop iterations.
    audit_every_ticks:
        Run the cross-member divergence audit every Nth tick (0 disables
        it).  The audit is O(members) digest compares under each group's
        mutation mutex, so it is cheap enough to run often.
    audit_probes:
        Seeded bit-exactness probes a restored member must answer
        identically to a live one before re-entering the rotation.
    backoff_base_s / backoff_multiplier / backoff_jitter / backoff_max_s:
        Jittered exponential backoff between repair attempts on the same
        member: ``base * multiplier**(attempt-1)``, capped at ``max``,
        scaled by ``1 ± jitter`` from the seeded RNG.
    max_repair_attempts / failure_window_s:
        Crash-loop detection: ``max_repair_attempts`` failed repairs
        inside ``failure_window_s`` quarantines the member instead of
        retrying forever.
    replace_quarantined:
        After quarantining a group member, bootstrap a replacement via
        ``add_member()`` (silently skipped when the group cannot mint
        members).
    probe_suspects:
        Send a seeded health probe to breaker-open members whose breaker
        admits one — breakers only close through real traffic, so an
        idle cluster needs the supervisor to generate it.
    repair_budget_s:
        Default convergence budget for :meth:`run_until_converged`.
    seed:
        Seeds the backoff jitter (and nothing else — detection and
        repair are deterministic given the cluster's state).
    auto_start:
        When handed to ``ShardedService(heal=...)``, start the wall-clock
        supervisor thread as part of construction.
    """

    tick_interval_s: float = 0.5
    audit_every_ticks: int = 4
    audit_probes: int = 8
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.1
    backoff_max_s: float = 5.0
    max_repair_attempts: int = 5
    failure_window_s: float = 60.0
    replace_quarantined: bool = False
    probe_suspects: bool = True
    repair_budget_s: float = 30.0
    seed: int = 0
    auto_start: bool = True

    def __post_init__(self) -> None:
        if self.tick_interval_s <= 0:
            raise ValueError("tick_interval_s must be positive")
        if self.audit_every_ticks < 0:
            raise ValueError("audit_every_ticks must be >= 0 (0 disables the audit)")
        if self.audit_probes < 0:
            raise ValueError("audit_probes must be >= 0")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be in [0, 1)")
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError("backoff_max_s must be >= backoff_base_s")
        if self.max_repair_attempts < 1:
            raise ValueError("max_repair_attempts must be >= 1")
        if self.failure_window_s <= 0:
            raise ValueError("failure_window_s must be positive")
        if self.repair_budget_s <= 0:
            raise ValueError("repair_budget_s must be positive")


__all__ = ["HealPolicy"]
