"""Health model: per-component states, events and reports.

Every cluster member (a shard service, or one member of a
:class:`~repro.resilience.group.ReplicaGroup`) is in exactly one of four
states, derived — never stored — from the signals the serving layers
already maintain:

``HEALTHY``
    In the serve rotation: not poisoned, process alive, breaker admitting.
``SUSPECT``
    Excluded or gated (poisoned, crashed, or breaker open) but the
    supervisor has not begun repairing it yet.
``REPAIRING``
    The supervisor has attempted at least one repair and the member is
    still excluded — between backoff retries.
``QUARANTINED``
    Repairs exhausted (K failures inside the crash-loop window) or
    impossible (no replication log to restore from).  Terminal for the
    supervisor: only an operator verb (``revive``/``catch_up``) returns
    a quarantined member, so the healer can never thrash on it.

Deriving the state keeps the model honest: there is no cached health bit
to go stale, and two observers always agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

HEALTHY = "healthy"
SUSPECT = "suspect"
REPAIRING = "repairing"
QUARANTINED = "quarantined"

#: All states, in escalation order (useful for table headers and tests).
STATES = (HEALTHY, SUSPECT, REPAIRING, QUARANTINED)


@dataclass(frozen=True)
class ComponentHealth:
    """One member's derived health at observation time."""

    shard: int
    member: int
    state: str
    #: Human-readable cause (empty when healthy).
    reason: str = ""
    #: Repair attempts the supervisor has made on this member so far.
    attempts: int = 0
    #: Log records the member has not applied (0 without a log).
    lag: int = 0


@dataclass(frozen=True)
class HealEvent:
    """One supervisor action or observation, in tick order.

    ``kind`` is one of ``diverged``, ``repair_failed``, ``repaired``,
    ``quarantined``, ``member_added``, ``probe_ok``, ``probe_failed``.
    """

    kind: str
    shard: int
    member: int
    detail: str
    tick: int


@dataclass(frozen=True)
class HealReport:
    """Outcome of one :meth:`HealSupervisor.run_until_converged` run."""

    #: No member left in SUSPECT/REPAIRING (QUARANTINED is tolerated —
    #: it is a stable, operator-visible endpoint, not churn).
    converged: bool
    #: Every member HEALTHY (strictly stronger than ``converged``).
    fully_healthy: bool
    ticks: int
    elapsed_s: float
    repairs: int
    quarantines: int
    #: Final member count per state.
    states: Dict[str, int]
    #: ``(shard, member)`` pairs quarantined at the end of the run.
    quarantined: Tuple[Tuple[int, int], ...]


__all__ = [
    "HEALTHY",
    "SUSPECT",
    "REPAIRING",
    "QUARANTINED",
    "STATES",
    "ComponentHealth",
    "HealEvent",
    "HealReport",
]
