"""Aggregated B+-tree — the 1-dimensional dominance-sum index."""

from .node import InternalNode, LeafNode
from .tree import AggBPlusTree

__all__ = ["AggBPlusTree", "LeafNode", "InternalNode"]
