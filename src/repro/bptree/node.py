"""Page payloads of the aggregated B+-tree."""

from __future__ import annotations

from typing import Any, List

from ..storage.pager import NO_PAGE


class LeafNode:
    """A leaf page: sorted keys with their aggregate values, plus a right-sibling link.

    Duplicate keys are merged on insert (values added), which is the natural
    representation for an aggregate index — the paper's structures never
    need to enumerate individual duplicates.
    """

    __slots__ = ("pid", "keys", "values", "next_pid", "total")

    def __init__(self, pid: int, zero: Any) -> None:
        self.pid = pid
        self.keys: List[float] = []
        self.values: List[Any] = []
        self.next_pid = NO_PAGE
        self.total = zero

    @property
    def is_leaf(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.keys)


class InternalNode:
    """An internal page: ``m`` children with ``m - 1`` separators and per-child aggregates.

    Child ``i`` covers the half-open key range ``[seps[i-1], seps[i])``
    (unbounded at the ends).  ``aggs[i]`` is the total value stored in
    ``children[i]``'s subtree — the field that lets a dominance-sum query
    absorb whole subtrees without descending into them.
    """

    __slots__ = ("pid", "seps", "children", "aggs", "total")

    def __init__(self, pid: int, zero: Any) -> None:
        self.pid = pid
        self.seps: List[float] = []
        self.children: List[int] = []
        self.aggs: List[Any] = []
        self.total = zero

    @property
    def is_leaf(self) -> bool:
        return False

    def __len__(self) -> int:
        return len(self.children)
