"""The aggregated B+-tree: a disk-based 1-dimensional dominance-sum index.

This is the base case of every recursive structure in the paper:

* a 1-dimensional ECDF-B-tree *is* this tree ("for d = 1 ... it is basically
  a B+-tree", Theorem 4's proof);
* the 1-dimensional BA-tree borders ("it is then sufficient to maintain
  these x positions in a 1-dimensional BA-tree", Section 5) are this tree;
* the data-cube adapter uses its ``range_sum``.

Each internal entry carries the aggregate of its child's subtree, so a
dominance-sum (prefix-sum) query touches exactly one root-to-leaf path:
``O(log_B n)`` page I/Os.  Inserts touch the same path; deletes are
modelled, as in all aggregate indices of the paper, by inserting the
negated value.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import TreeInvariantError
from ..core.values import Value, accumulate
from ..obs import trace as _trace
from ..storage import StorageContext
from ..storage.pager import NO_PAGE
from .node import InternalNode, LeafNode


class AggBPlusTree:
    """Aggregated B+-tree over ``(key, value)`` entries.

    Parameters
    ----------
    storage:
        The shared disk/buffer context; every node is one page there.
    zero:
        Additive identity of the aggregated value type.
    value_bytes:
        Byte width of one value, used to derive page fan-out.  Defaults to
        the context layout's width (8 for scalars); polynomial indices pass
        their coefficient-tuple footprint.
    leaf_capacity / internal_capacity:
        Explicit fan-out overrides (tests use tiny capacities to force deep
        trees).
    """

    def __init__(
        self,
        storage: StorageContext,
        zero: Value = 0.0,
        value_bytes: Optional[int] = None,
        leaf_capacity: Optional[int] = None,
        internal_capacity: Optional[int] = None,
    ) -> None:
        self.storage = storage
        self.zero = zero
        layout = (storage.layout if value_bytes is None else storage.with_layout(value_bytes))
        self.leaf_capacity = leaf_capacity or layout.bptree_leaf_capacity()
        self.internal_capacity = internal_capacity or layout.bptree_internal_capacity()
        if self.leaf_capacity < 2:
            raise ValueError(f"leaf_capacity must be >= 2, got {self.leaf_capacity}")
        if self.internal_capacity < 3:
            raise ValueError(f"internal_capacity must be >= 3, got {self.internal_capacity}")
        root = LeafNode(storage.pager.allocate(), zero)
        storage.pager.put(root.pid, root)
        self.root_pid = root.pid
        self.num_entries = 0
        self.height = 1

    # -- page helpers ---------------------------------------------------------

    def _fetch(self, pid: int, write: bool = False):
        self.storage.buffer.access(pid, write=write)
        return self.storage.pager.get(pid)

    def _new_leaf(self) -> LeafNode:
        node = LeafNode(self.storage.pager.allocate(), self.zero)
        self.storage.pager.put(node.pid, node)
        return node

    def _new_internal(self) -> InternalNode:
        node = InternalNode(self.storage.pager.allocate(), self.zero)
        self.storage.pager.put(node.pid, node)
        return node

    # -- queries ------------------------------------------------------------------

    def dominance_sum(self, key: "float | Sequence[float]") -> Value:
        """Sum of values with stored key strictly less than ``key``.

        Accepts a plain number or a 1-tuple, so the tree drops in wherever
        the d-dimensional dominance protocol expects point arguments.
        """
        key = _as_key(key)
        tracer = _trace._ACTIVE
        if tracer is None:
            return self._dominance_sum(key, None)
        with tracer.span("bptree.dominance_sum", height=self.height):
            return self._dominance_sum(key, tracer)

    def _dominance_sum(self, key: float, tracer) -> Value:
        result = self.zero
        pid = self.root_pid
        while True:
            node = self._fetch(pid)
            if tracer is not None:
                tracer.event("node", pid=pid, leaf=node.is_leaf)
            if node.is_leaf:
                cut = bisect_left(node.keys, key)
                for v in node.values[:cut]:
                    result = result + v
                return result
            idx = bisect_right(node.seps, key)
            for agg in node.aggs[:idx]:
                result = result + agg
            pid = node.children[idx]

    def range_sum(self, low: float, high: float) -> Value:
        """Sum of values with key in ``[low, high)``."""
        return self.dominance_sum(high) + (-self.dominance_sum(low))

    def collect_points(self) -> Iterator[Tuple[Tuple[float], Value]]:
        """Like :meth:`collect` but yields 1-tuple points (protocol form)."""
        for key, value in self.collect():
            yield (key,), value

    def total(self) -> Value:
        """Sum of every stored value (one page access at the root)."""
        root = self._fetch(self.root_pid)
        return root.total

    def __len__(self) -> int:
        return self.num_entries

    # -- insertion -----------------------------------------------------------------

    def insert(self, key: "float | Sequence[float]", value: Value) -> None:
        """Insert a weighted key, merging into an existing equal key if present."""
        key = _as_key(key)
        split = self._insert_into(self.root_pid, key, value)
        if split is not None:
            sep, right_pid, left_total, right_total = split
            new_root = self._new_internal()
            new_root.seps = [sep]
            new_root.children = [self.root_pid, right_pid]
            new_root.aggs = [left_total, right_total]
            new_root.total = left_total + right_total
            self.storage.buffer.access(new_root.pid, write=True)
            self.root_pid = new_root.pid
            self.height += 1

    def _insert_into(
        self, pid: int, key: float, value: Value
    ) -> Optional[Tuple[float, int, Value, Value]]:
        """Recursive insert; returns (separator, new right pid, totals) on split."""
        node = self._fetch(pid, write=True)
        if node.is_leaf:
            return self._leaf_insert(node, key, value)
        idx = bisect_right(node.seps, key)
        split = self._insert_into(node.children[idx], key, value)
        node.total = node.total + value
        if split is None:
            node.aggs[idx] = node.aggs[idx] + value
            return None
        sep, right_pid, left_total, right_total = split
        node.aggs[idx] = left_total
        node.seps.insert(idx, sep)
        node.children.insert(idx + 1, right_pid)
        node.aggs.insert(idx + 1, right_total)
        if len(node.children) <= self.internal_capacity:
            return None
        return self._split_internal(node)

    def _leaf_insert(
        self, leaf: LeafNode, key: float, value: Value
    ) -> Optional[Tuple[float, int, Value, Value]]:
        i = bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            leaf.values[i] = leaf.values[i] + value
        else:
            leaf.keys.insert(i, key)
            leaf.values.insert(i, value)
            self.num_entries += 1
        leaf.total = leaf.total + value
        if len(leaf.keys) <= self.leaf_capacity:
            return None
        return self._split_leaf(leaf)

    def _split_leaf(self, leaf: LeafNode) -> Tuple[float, int, Value, Value]:
        mid = len(leaf.keys) // 2
        right = self._new_leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        right.next_pid = leaf.next_pid
        right.total = accumulate(right.values, self.zero)
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        leaf.next_pid = right.pid
        leaf.total = accumulate(leaf.values, self.zero)
        self.storage.buffer.access(right.pid, write=True)
        return right.keys[0], right.pid, leaf.total, right.total

    def _split_internal(self, node: InternalNode) -> Tuple[float, int, Value, Value]:
        mid = len(node.children) // 2
        right = self._new_internal()
        sep = node.seps[mid - 1]
        right.seps = node.seps[mid:]
        right.children = node.children[mid:]
        right.aggs = node.aggs[mid:]
        right.total = accumulate(right.aggs, self.zero)
        node.seps = node.seps[: mid - 1]
        node.children = node.children[:mid]
        node.aggs = node.aggs[:mid]
        node.total = accumulate(node.aggs, self.zero)
        self.storage.buffer.access(right.pid, write=True)
        return sep, right.pid, node.total, right.total

    # -- bulk loading -----------------------------------------------------------------

    def bulk_load(self, items: Iterable[Tuple[float, Value]], fill_factor: float = 1.0) -> None:
        """Build the tree from scratch out of ``(key, value)`` pairs.

        Duplicate keys are merged.  ``fill_factor`` controls leaf packing
        (1.0 builds the most compact tree; dynamic workloads may want ~0.7
        to leave room for subsequent inserts).  Any existing content is
        discarded.
        """
        if not 0.0 < fill_factor <= 1.0:
            raise ValueError(f"fill_factor must be in (0, 1], got {fill_factor}")
        merged: List[Tuple[float, Value]] = []
        normalized = [(_as_key(key), value) for key, value in items]
        for key, value in sorted(normalized, key=lambda kv: kv[0]):
            if merged and merged[-1][0] == key:
                merged[-1] = (key, merged[-1][1] + value)
            else:
                merged.append((key, value))
        self._free_subtree(self.root_pid)
        per_leaf = max(2, int(self.leaf_capacity * fill_factor))
        leaves: List[LeafNode] = []
        for start in range(0, len(merged), per_leaf):
            chunk = merged[start : start + per_leaf]
            leaf = self._new_leaf()
            leaf.keys = [k for k, _v in chunk]
            leaf.values = [v for _k, v in chunk]
            leaf.total = accumulate(leaf.values, self.zero)
            self.storage.buffer.access(leaf.pid, write=True)
            leaves.append(leaf)
        if not leaves:
            leaves.append(self._new_leaf())
        for left, right in zip(leaves, leaves[1:]):
            left.next_pid = right.pid
        self.num_entries = len(merged)
        self.height = 1
        # Build internal levels bottom-up.  Each level entry is
        # (lowest key of subtree, pid, subtree total).
        level: List[Tuple[float, int, Value]] = [
            (leaf.keys[0] if leaf.keys else float("-inf"), leaf.pid, leaf.total)
            for leaf in leaves
        ]
        per_internal = max(2, int(self.internal_capacity * fill_factor))
        while len(level) > 1:
            next_level: List[Tuple[float, int, Value]] = []
            for chunk in _chunks_no_orphan(level, per_internal):
                node = self._new_internal()
                node.seps = [low for low, _pid, _tot in chunk[1:]]
                node.children = [pid for _low, pid, _tot in chunk]
                node.aggs = [tot for _low, _pid, tot in chunk]
                node.total = accumulate(node.aggs, self.zero)
                self.storage.buffer.access(node.pid, write=True)
                next_level.append((chunk[0][0], node.pid, node.total))
            level = next_level
            self.height += 1
        self.root_pid = level[0][1]

    # -- maintenance ---------------------------------------------------------------------

    def collect(self) -> Iterator[Tuple[float, Value]]:
        """Yield every ``(key, value)`` in key order, accessing each leaf page once."""
        pid = self._leftmost_leaf()
        while pid != NO_PAGE:
            leaf = self._fetch(pid)
            yield from zip(leaf.keys, leaf.values)
            pid = leaf.next_pid

    def _leftmost_leaf(self) -> int:
        pid = self.root_pid
        while True:
            node = self._fetch(pid)
            if node.is_leaf:
                return pid
            pid = node.children[0]

    def destroy(self) -> None:
        """Free every page of the tree and reset it to an empty leaf root."""
        self._free_subtree(self.root_pid)
        root = self._new_leaf()
        self.root_pid = root.pid
        self.num_entries = 0
        self.height = 1

    def release(self) -> None:
        """Free every page without recreating a root; the tree becomes unusable.

        Used by owners (borders) that are discarding the structure for good.
        """
        self._free_subtree(self.root_pid)
        self.root_pid = -1
        self.num_entries = 0

    def _free_subtree(self, pid: int) -> None:
        node = self.storage.pager.get(pid)
        if not node.is_leaf:
            for child in node.children:
                self._free_subtree(child)
        self.storage.buffer.invalidate(pid)
        self.storage.pager.free(pid)

    def num_pages(self) -> int:
        """Pages owned by this tree (walks the whole tree; diagnostics only)."""
        return self._count_pages(self.root_pid)

    def _count_pages(self, pid: int) -> int:
        node = self.storage.pager.get(pid)
        if node.is_leaf:
            return 1
        return 1 + sum(self._count_pages(c) for c in node.children)

    # -- invariants -------------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify ordering, aggregate and capacity invariants; raises on violation."""
        self._check_node(self.root_pid, float("-inf"), float("inf"), is_root=True)

    def _check_node(
        self, pid: int, low: float, high: float, is_root: bool = False
    ) -> Tuple[Value, int]:
        node = self.storage.pager.get(pid)
        if node.is_leaf:
            if node.keys != sorted(node.keys):
                raise TreeInvariantError(f"leaf {pid} keys out of order")
            if len(set(node.keys)) != len(node.keys):
                raise TreeInvariantError(f"leaf {pid} has duplicate keys")
            if len(node.keys) > self.leaf_capacity:
                raise TreeInvariantError(f"leaf {pid} over capacity")
            for k in node.keys:
                if not low <= k < high:
                    raise TreeInvariantError(f"leaf {pid} key {k} outside range [{low}, {high})")
            total = accumulate(node.values, self.zero)
            if not _values_close(total, node.total):
                raise TreeInvariantError(f"leaf {pid} total mismatch")
            return node.total, 1
        if len(node.children) != len(node.aggs) or len(node.seps) != len(node.children) - 1:
            raise TreeInvariantError(f"internal {pid} arity mismatch")
        if len(node.children) > self.internal_capacity:
            raise TreeInvariantError(f"internal {pid} over capacity")
        if not is_root and len(node.children) < 2:
            raise TreeInvariantError(f"internal {pid} underfull")
        bounds = [low, *node.seps, high]
        if bounds != sorted(bounds):
            raise TreeInvariantError(f"internal {pid} separators out of order")
        total = self.zero
        height = None
        for i, child in enumerate(node.children):
            child_total, child_height = self._check_node(child, bounds[i], bounds[i + 1])
            if not _values_close(child_total, node.aggs[i]):
                raise TreeInvariantError(f"internal {pid} agg[{i}] mismatch")
            if height is None:
                height = child_height
            elif height != child_height:
                raise TreeInvariantError(f"internal {pid} unbalanced children")
            total = total + child_total
        if not _values_close(total, node.total):
            raise TreeInvariantError(f"internal {pid} total mismatch")
        assert height is not None
        return node.total, height + 1


def _as_key(key: "float | Sequence[float]") -> float:
    """Coerce a scalar or 1-tuple point into the tree's float key."""
    if isinstance(key, (int, float)):
        return float(key)
    if len(key) != 1:
        raise TreeInvariantError(f"aggregated B+-tree keys are 1-dimensional, got arity {len(key)}")
    return float(key[0])


def _chunks_no_orphan(items: List, size: int) -> Iterator[List]:
    """Split ``items`` into chunks of ``size``, never leaving a final chunk of 1.

    B+-tree internal nodes need at least two children; when the item count
    is ``1 (mod size)`` the final two chunks are rebalanced to sizes
    ``size - 1`` and ``2``.
    """
    n = len(items)
    start = 0
    while start < n:
        end = start + size
        if 0 < n - end == 1 and size > 2:
            end -= 1
        yield items[start:end]
        start = end


def _values_close(a: Any, b: Any) -> bool:
    from ..core.values import values_equal

    return values_equal(a, b, tol=1e-6)
