"""Borders: the lower-dimensional dominance-sum satellites of index records.

Both ECDF-B-trees and the BA-tree augment index entries with *borders* — a
(d-1)-dimensional dominance-sum structure per entry.  The paper notes that
"a border may contain only a few points and thus it is wasteful to keep a
separate tree for this border (which costs one I/O to retrieve).  To avoid
this, we can use a single disk page to keep multiple borders."

:class:`Border` implements that dual representation:

* **array mode** — entries live in a slab allocation inside a shared page;
  queries scan the (small) array at the cost of one page access;
* **tree mode** — once the array outgrows ``spill_bytes``, the entries are
  bulk-loaded into a page-based dominance-sum tree supplied by the owner
  (an aggregated B+-tree for 1-d borders, a recursive ECDF-B/BA-tree for
  higher dimensions).

The owner passes a ``tree_factory`` so this module stays independent of the
concrete index families (and of their import cycles).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from .core.errors import DimensionMismatchError
from .core.geometry import Coords, as_coords
from .core.values import Value
from .storage import StorageContext
from .storage.slab import SlabHandle

_Entry = Tuple[Coords, Value]

#: Builds the spill structure; receives the expected number of entries so
#: implementations may tune themselves, and must return an object with the
#: dominance protocol plus ``destroy()``.
TreeFactory = Callable[[], object]


class Border:
    """A k-dimensional dominance-sum structure with array/tree dual storage."""

    def __init__(
        self,
        storage: StorageContext,
        dims: int,
        zero: Value,
        entry_bytes: int,
        tree_factory: TreeFactory,
        spill_bytes: Optional[int] = None,
    ) -> None:
        if dims < 1:
            raise DimensionMismatchError(f"border dims must be >= 1, got {dims}")
        self.storage = storage
        self.dims = dims
        self.zero = zero
        self.entry_bytes = entry_bytes
        self._tree_factory = tree_factory
        self.spill_bytes = (spill_bytes if spill_bytes is not None else storage.page_size // 4)
        self._entries: List[_Entry] = []
        self._handle: Optional[SlabHandle] = None
        self._tree: Optional[object] = None
        self._total: Value = zero
        self.num_entries = 0

    # -- state ------------------------------------------------------------------

    @property
    def is_spilled(self) -> bool:
        """True once the border has been promoted to its own tree."""
        return self._tree is not None

    def total(self) -> Value:
        """Sum of every stored value (no page access: owners cache this)."""
        return self._total

    def __len__(self) -> int:
        return self.num_entries

    # -- updates ------------------------------------------------------------------

    def insert(self, point: Sequence[float], value: Value) -> None:
        """Add a weighted (projected) point, spilling to a tree when too large."""
        coords = self._check(point)
        self._total = self._total + value
        if self._tree is not None:
            self._tree.insert(coords, value)  # type: ignore[attr-defined]
            self.num_entries += 1
            return
        merged = False
        for i, (stored, stored_value) in enumerate(self._entries):
            if stored == coords:
                self._entries[i] = (stored, stored_value + value)
                merged = True
                break
        if not merged:
            self._entries.append((coords, value))
            self.num_entries += 1
        nbytes = max(1, len(self._entries) * self.entry_bytes)
        if nbytes > self.spill_bytes:
            self._spill()
            return
        if self._handle is None:
            self._handle = self.storage.slab.allocate(nbytes)
        else:
            self._handle = self.storage.slab.resize(self._handle, nbytes)

    def bulk_load(self, items: Iterable[Tuple[Sequence[float], Value]]) -> None:
        """Build the border from scratch (choosing array or tree mode by size)."""
        self.destroy()
        entries: List[_Entry] = []
        seen = {}
        total = self.zero
        for point, value in items:
            coords = self._check(point)
            total = total + value
            if coords in seen:
                idx = seen[coords]
                entries[idx] = (coords, entries[idx][1] + value)
            else:
                seen[coords] = len(entries)
                entries.append((coords, value))
        self._total = total
        self.num_entries = len(entries)
        if not entries:
            return
        nbytes = len(entries) * self.entry_bytes
        if nbytes > self.spill_bytes:
            self._tree = self._tree_factory()
            self._tree.bulk_load(entries)  # type: ignore[attr-defined]
        else:
            self._entries = entries
            self._handle = self.storage.slab.allocate(nbytes)

    def _spill(self) -> None:
        entries = self._entries
        self._entries = []
        if self._handle is not None:
            self.storage.slab.free(self._handle)
            self._handle = None
        self._tree = self._tree_factory()
        self._tree.bulk_load(entries)  # type: ignore[attr-defined]

    # -- queries --------------------------------------------------------------------

    def dominance_sum(self, point: Sequence[float]) -> Value:
        """Strict dominance-sum over the border's entries.

        An empty border answers without touching any page: the owning
        record would hold a NULL handle, so no I/O is incurred.
        """
        coords = self._check(point)
        if self.num_entries == 0:
            return self.zero
        if self._tree is not None:
            return self._tree.dominance_sum(coords)  # type: ignore[attr-defined]
        if self._handle is not None:
            self.storage.slab.access(self._handle)
        result = self.zero
        for stored, value in self._entries:
            if all(s < c for s, c in zip(stored, coords)):
                result = result + value
        return result

    def collect(self) -> Iterable[_Entry]:
        """Yield every stored entry (used when the owner rebuilds borders)."""
        if self._tree is not None:
            if self.dims == 1 and hasattr(self._tree, "collect_points"):
                yield from self._tree.collect_points()
            else:
                yield from self._tree.collect()  # type: ignore[attr-defined]
            return
        if self._handle is not None:
            self.storage.slab.access(self._handle)
        yield from self._entries

    # -- lifecycle --------------------------------------------------------------------

    def destroy(self) -> None:
        """Release every page/slab byte owned by this border."""
        if self._handle is not None:
            self.storage.slab.free(self._handle)
            self._handle = None
        if self._tree is not None:
            if hasattr(self._tree, "release"):
                self._tree.release()
            else:
                self._tree.destroy()  # type: ignore[attr-defined]
            self._tree = None
        self._entries = []
        self._total = self.zero
        self.num_entries = 0

    def _check(self, point: Sequence[float]) -> Coords:
        coords = point if isinstance(point, tuple) else as_coords(point)
        if len(coords) != self.dims:
            raise DimensionMismatchError(f"point arity {len(coords)} != border dims {self.dims}")
        return coords
