"""Reductions from box-sum queries to dominance-sum queries.

Two reductions are implemented, both operational in any dimension:

* :class:`CornerReduction` — the paper's new technique (Lemma 1 /
  Theorem 2).  One dominance-sum index per corner of the objects (``2^d``
  indices); a box-sum query issues exactly ``2^d`` dominance-sum queries
  combined by inclusion–exclusion.
* :class:`EO82Reduction` — the prior technique of Edelsbrunner and
  Overmars [13], generalized to d dimensions as in the proof of Theorem 1.
  It maintains one index per *(dimension subset, side choice)* pair and
  needs ``sum_i 2^i * C(d, i) = 3^d - 1`` dominance-sum queries plus the
  grand total.

Both express every constituent query as a *strict* dominance-sum by negating
coordinates where the underlying condition is a ``>`` comparison, so any
index implementing the dominance protocol (see :mod:`repro.core`) serves
either reduction unchanged.
"""

from __future__ import annotations

import itertools
from math import comb
from typing import Callable, Dict, Iterator, List, Mapping, NamedTuple, Sequence, Tuple

from ..obs import trace as _trace
from .errors import DimensionMismatchError
from .geometry import Box, Coords
from .values import Value

#: A corner selector: one 0/1 flag per dimension (1 picks the high side).
Signs = Tuple[int, ...]

#: Factory building a fresh dominance-sum index of the requested arity.
IndexFactory = Callable[[int], object]


class Probe(NamedTuple):
    """One constituent dominance-sum probe of a box-sum query plan.

    ``key`` selects the constituent index (a sign vector for the corner
    reduction, a ``(dims, sides)`` pair for EO82), ``point`` is the
    dominance query point, ``parity`` its inclusion–exclusion sign.  Two
    probes with equal :attr:`identity` hit the same index at the same point
    and therefore return the same value — the unit of sharing exploited by
    the :mod:`repro.service` batch planner.
    """

    key: object
    point: Coords
    parity: int

    @property
    def identity(self) -> Tuple[object, Coords]:
        """The dedup key: ``(index key, point)`` — parity excluded."""
        return (self.key, self.point)


#: Resolved probe values, keyed by :attr:`Probe.identity`.
ProbeValues = Mapping[Tuple[object, Coords], Value]


def combine_probe_values(
    plan: Sequence[Probe], values: ProbeValues, base: Value, zero: Value
) -> Value:
    """Inclusion–exclusion reassembly of a plan from resolved probe values.

    Accumulates positive and negative terms separately in plan order —
    exactly as the reductions' own ``box_sum`` methods do — so the result is
    bit-identical to a direct evaluation.  ``base`` seeds the positive side
    (``zero`` for the corner reduction, the grand total for EO82).

    An empty plan (zero probes — e.g. a sharded router scattering a batch
    where every probe was pruned away, or a degenerate caller) is the
    additive identity of the reduction: ``base`` is returned unchanged,
    never an exception.  For the corner reduction that is ``zero`` itself;
    for EO82 it is the grand total (no avoidance terms to subtract).
    """
    if not plan:
        return base
    positive = base
    negative = zero
    for probe in plan:
        partial = values[probe.identity]
        if probe.parity > 0:
            positive = positive + partial
        else:
            negative = negative + partial
    return positive + (-negative)


def all_signs(dims: int) -> Iterator[Signs]:
    """All ``2^dims`` corner selectors in lexicographic order."""
    return itertools.product((0, 1), repeat=dims)


def format_key(key: object) -> str:
    """Human-readable label for a constituent-index key of either reduction.

    ``(0, 1)`` → ``"corner01"``; an EO82 ``(dims, sides)`` pair →
    ``"EO82[0lo,2hi]"``.  Shared by :mod:`repro.core.explain` reports and
    trace span attributes.
    """
    if isinstance(key, tuple) and key and isinstance(key[0], tuple):
        dims_subset, sides = key
        side_names = ",".join(f"{d}{'lo' if s == 0 else 'hi'}" for d, s in zip(dims_subset, sides))
        return f"EO82[{side_names}]"
    return "corner" + "".join(str(s) for s in key)  # type: ignore[union-attr]


class CornerReduction:
    """The paper's ``2^d``-query reduction (Theorem 2).

    For each sign vector ``s``, index ``s`` stores — for every object —
    the corner with coordinate ``o.h_i`` where ``s_i = 1`` and ``o.l_i``
    where ``s_i = 0``.  By Lemma 1::

        boxsum(q) = sum over s of (-1)^{sum s} *
                    DS_s(point with q.l_i where s_i = 1, q.h_i where s_i = 0)

    where ``DS_s`` is the strict dominance-sum over index ``s``.
    """

    def __init__(self, dims: int) -> None:
        if dims < 1:
            raise DimensionMismatchError(f"dims must be >= 1, got {dims}")
        self.dims = dims

    @property
    def num_queries(self) -> int:
        """Dominance-sum queries issued per box-sum query: exactly ``2^d``."""
        return 2 ** self.dims

    def index_keys(self) -> List[Signs]:
        """The sign vectors identifying the ``2^d`` constituent indices."""
        return list(all_signs(self.dims))

    def insertions(self, box: Box, value: Value) -> Iterator[Tuple[Signs, Coords, Value]]:
        """Yield ``(index key, point, value)`` for inserting one object.

        Index ``s`` receives the object corner selected by ``s`` — e.g. the
        ``(0, 0)`` index of Figure 2 stores every object's lower-left corner.
        """
        self._check(box)
        for signs in all_signs(self.dims):
            yield signs, box.corner(signs), value

    def query_plan(self, query: Box) -> Iterator[Tuple[Signs, Coords, int]]:
        """Yield ``(index key, dominance query point, +1/-1 parity)`` for one query.

        The query point for index ``s`` uses ``q.l_i`` where ``s_i = 1`` and
        ``q.h_i`` where ``s_i = 0`` (condition ``A^{s_i}_i`` of Lemma 1);
        the parity is ``(-1)^{sum s}``.
        """
        self._check(query)
        for signs in all_signs(self.dims):
            point = tuple(query.low[i] if signs[i] else query.high[i] for i in range(self.dims))
            parity = -1 if sum(signs) % 2 else 1
            yield signs, point, parity

    def probes(self, query: Box) -> List[Probe]:
        """The query plan as :class:`Probe` records (planner-facing form)."""
        return [Probe(key, point, parity) for key, point, parity in self.query_plan(query)]

    def combine(self, plan: Sequence[Probe], values: ProbeValues, zero: Value = 0.0) -> Value:
        """Reassemble a box-sum from externally resolved probe values.

        Bit-identical to :meth:`box_sum` over the same index contents: the
        accumulation order matches, and a dominance-sum probe is a pure
        function of the index state.
        """
        return combine_probe_values(plan, values, zero, zero)

    def box_sum(self, indices: Dict[Signs, object], query: Box, zero: Value = 0.0) -> Value:
        """Evaluate a box-sum against the ``2^d`` dominance indices."""
        tracer = _trace._ACTIVE
        positive = zero
        negative = zero
        for signs, point, parity in self.query_plan(query):
            if tracer is None:
                partial = indices[signs].dominance_sum(point)  # type: ignore[attr-defined]
            else:
                with tracer.span("dominance_sum", key=format_key(signs), parity=parity):
                    partial = indices[signs].dominance_sum(point)  # type: ignore[attr-defined]
            if parity > 0:
                positive = positive + partial
            else:
                negative = negative + partial
        return positive + (-negative)

    def _check(self, box: Box) -> None:
        if box.dims != self.dims:
            raise DimensionMismatchError(f"box dims {box.dims} != reduction dims {self.dims}")


class EO82Reduction:
    """The Edelsbrunner–Overmars [13] reduction, generalized per Theorem 1.

    ``boxsum(q) = total − Σ objects avoiding q``, where the avoidance sum is
    computed by inclusion–exclusion over the non-empty sets of dimensions in
    which an object is fully on one side of the query box::

        Σ_{∅ ≠ T ⊆ dims} Σ_{σ: T → {low, high}} (-1)^{|T|+1} · DS_{T,σ}(q)

    Each ``(T, σ)`` pair owns a ``|T|``-dimensional dominance index storing,
    per object, the coordinate ``o.h_i`` (for σ_i = low, i.e. the object is
    left of q: ``o.h_i < q.l_i``) or ``−o.l_i`` (for σ_i = high: the object
    is right of q, ``o.l_i > q.h_i`` ⇔ ``−o.l_i < −q.h_i``).  The total of
    all object values is kept in a plain accumulator.
    """

    #: Marker for the σ side choices.
    LOW, HIGH = 0, 1

    def __init__(self, dims: int) -> None:
        if dims < 1:
            raise DimensionMismatchError(f"dims must be >= 1, got {dims}")
        self.dims = dims

    @property
    def num_queries(self) -> int:
        """Dominance-sum queries per box-sum: ``3^d − 1`` (Theorem 1's count)."""
        return eo82_query_count(self.dims)

    def index_keys(self) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        """All ``(T, σ)`` pairs: a tuple of dimensions and a parallel side tuple."""
        keys = []
        for size in range(1, self.dims + 1):
            for dims_subset in itertools.combinations(range(self.dims), size):
                for sides in itertools.product((self.LOW, self.HIGH), repeat=size):
                    keys.append((dims_subset, sides))
        return keys

    def insertions(
        self, box: Box, value: Value
    ) -> Iterator[Tuple[Tuple[Tuple[int, ...], Tuple[int, ...]], Coords, Value]]:
        """Yield ``(index key, transformed point, value)`` for one object."""
        self._check(box)
        for dims_subset, sides in self.index_keys():
            point = tuple(
                box.high[d] if side == self.LOW else -box.low[d]
                for d, side in zip(dims_subset, sides)
            )
            yield (dims_subset, sides), point, value

    def query_plan(
        self, query: Box
    ) -> Iterator[Tuple[Tuple[Tuple[int, ...], Tuple[int, ...]], Coords, int]]:
        """Yield ``(index key, dominance query point, parity)``; parity excludes the total."""
        self._check(query)
        for dims_subset, sides in self.index_keys():
            point = tuple(
                query.low[d] if side == self.LOW else -query.high[d]
                for d, side in zip(dims_subset, sides)
            )
            # Avoidance terms of odd |T| are subtracted from the total,
            # even |T| added back (inclusion–exclusion).
            parity = -1 if len(dims_subset) % 2 == 1 else 1
            yield (dims_subset, sides), point, parity

    def probes(self, query: Box) -> List[Probe]:
        """The query plan as :class:`Probe` records (planner-facing form)."""
        return [Probe(key, point, parity) for key, point, parity in self.query_plan(query)]

    def combine(
        self, plan: Sequence[Probe], values: ProbeValues, total: Value, zero: Value = 0.0
    ) -> Value:
        """Reassemble a box-sum from resolved probe values and the grand total."""
        return combine_probe_values(plan, values, total, zero)

    def box_sum(
        self,
        indices: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], object],
        total: Value,
        query: Box,
        zero: Value = 0.0,
    ) -> Value:
        """Evaluate a box-sum from the grand total and the avoidance indices."""
        tracer = _trace._ACTIVE
        positive = total
        negative = zero
        for key, point, parity in self.query_plan(query):
            if tracer is None:
                partial = indices[key].dominance_sum(point)  # type: ignore[attr-defined]
            else:
                with tracer.span("dominance_sum", key=format_key(key), parity=parity):
                    partial = indices[key].dominance_sum(point)  # type: ignore[attr-defined]
            if parity > 0:
                positive = positive + partial
            else:
                negative = negative + partial
        return positive + (-negative)

    def _check(self, box: Box) -> None:
        if box.dims != self.dims:
            raise DimensionMismatchError(f"box dims {box.dims} != reduction dims {self.dims}")


def eo82_query_count(dims: int) -> int:
    """Number of dominance-sum queries of the [13] scheme: ``Σ_i 2^i C(d,i) = 3^d − 1``."""
    return sum(2**i * comb(dims, i) for i in range(1, dims + 1))


def corner_query_count(dims: int) -> int:
    """Number of dominance-sum queries of the paper's scheme: ``2^d``."""
    return 2**dims


def reduction_comparison(max_dims: int = 8) -> List[Tuple[int, int, int]]:
    """Rows ``(d, EO82 count, corner count)`` — the Theorem 1 vs Theorem 2 table.

    The paper's example: at d = 3 the old method needs 26 queries, the new
    one 8.
    """
    return [(d, eo82_query_count(d), corner_query_count(d)) for d in range(1, max_dims + 1)]
