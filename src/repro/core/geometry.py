"""d-dimensional points, boxes, dominance and the paper's intersection predicate.

The paper (Section 2) fixes the following conventions, which this module
implements verbatim:

* a point ``x`` *dominates* ``y`` iff ``x_i >= y_i`` in every dimension;
* the reduction conditions ``A^0_i`` / ``A^1_i`` are *strict*:
  ``A^0_i(o, q) = o.l_i < q.h_i`` and ``A^1_i(o, q) = o.h_i < q.l_i``;
* two intervals ``i1``, ``i2`` intersect iff
  ``i1.low < i2.high and not (i1.high < i2.low)``, and two boxes intersect
  iff their projections intersect in every dimension.

Internally points are plain tuples of floats (cheap to hash, compare and
store inside pages); :class:`Box` is the friendly wrapper used at API
boundaries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from .errors import DimensionMismatchError, InvalidBoxError

#: A point is a tuple of per-dimension coordinates.
Coords = Tuple[float, ...]


def as_coords(point: Sequence[float]) -> Coords:
    """Normalize any coordinate sequence to the internal tuple form."""
    return tuple(float(c) for c in point)


def check_same_dims(a: Sequence[float], b: Sequence[float]) -> None:
    """Raise :class:`DimensionMismatchError` unless ``a`` and ``b`` have equal arity."""
    if len(a) != len(b):
        raise DimensionMismatchError(f"dimension mismatch: {len(a)} vs {len(b)}")


def dominates(x: Sequence[float], y: Sequence[float]) -> bool:
    """Return True iff ``x`` dominates ``y`` (``x_i >= y_i`` for every i)."""
    check_same_dims(x, y)
    return all(xi >= yi for xi, yi in zip(x, y))


def strictly_dominates(x: Sequence[float], y: Sequence[float]) -> bool:
    """Return True iff ``y_i < x_i`` in every dimension.

    This is the predicate dominance-sum indices answer: the ``A`` conditions
    of Lemma 1 are all strict ``<`` comparisons, so a stored point ``y``
    contributes to the dominance-sum at query point ``x`` iff
    ``strictly_dominates(x, y)``.
    """
    check_same_dims(x, y)
    return all(yi < xi for xi, yi in zip(x, y))


def intervals_intersect(low1: float, high1: float, low2: float, high2: float) -> bool:
    """The paper's interval intersection: ``low1 < high2 and not (high1 < low2)``."""
    return low1 < high2 and not high1 < low2


@dataclass(frozen=True)
class Box:
    """An axis-parallel d-dimensional rectangle given by its low and high corners.

    ``low`` must be dominated by ``high``; degenerate boxes (zero extent in
    some or all dimensions, i.e. points) are allowed — the paper treats
    range-sum over points as the special case of box-sum with degenerate
    boxes.
    """

    low: Coords
    high: Coords

    def __init__(self, low: Sequence[float], high: Sequence[float]) -> None:
        low_t = as_coords(low)
        high_t = as_coords(high)
        check_same_dims(low_t, high_t)
        if not dominates(high_t, low_t):
            raise InvalidBoxError(f"low corner {low_t} must be dominated by high corner {high_t}")
        object.__setattr__(self, "low", low_t)
        object.__setattr__(self, "high", high_t)

    # -- basic properties -------------------------------------------------

    @property
    def dims(self) -> int:
        """Number of dimensions of this box."""
        return len(self.low)

    @property
    def is_point(self) -> bool:
        """True iff the box has zero extent in every dimension."""
        return self.low == self.high

    def side(self, dim: int) -> float:
        """Extent of the box along dimension ``dim``."""
        return self.high[dim] - self.low[dim]

    def volume(self) -> float:
        """Product of the side lengths (area in 2-d, volume in 3-d, ...)."""
        result = 1.0
        for lo, hi in zip(self.low, self.high):
            result *= hi - lo
        return result

    def margin(self) -> float:
        """Sum of the side lengths (the R*-tree split heuristic's 'margin')."""
        return sum(hi - lo for lo, hi in zip(self.low, self.high))

    def center(self) -> Coords:
        """Center point of the box."""
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.low, self.high))

    # -- predicates --------------------------------------------------------

    def intersects(self, other: "Box") -> bool:
        """Paper-semantics intersection test (strict on the low side).

        Projections must intersect in every dimension using
        :func:`intervals_intersect`.
        """
        check_same_dims(self.low, other.low)
        return all(
            intervals_intersect(self.low[i], self.high[i], other.low[i], other.high[i])
            for i in range(self.dims)
        )

    def contains_box(self, other: "Box") -> bool:
        """True iff ``other`` lies entirely within this box (closed on both sides)."""
        check_same_dims(self.low, other.low)
        return dominates(other.low, self.low) and dominates(self.high, other.high)

    def contains_point(self, point: Sequence[float]) -> bool:
        """Half-open membership test: ``low_i <= p_i < high_i`` in every dimension.

        The half-open convention is what the page-partitioning trees
        (k-d-B-tree, BA-tree) use so that a point belongs to exactly one
        sibling region.
        """
        check_same_dims(self.low, point)
        return all(lo <= p < hi for lo, p, hi in zip(self.low, point, self.high))

    def contains_point_closed(self, point: Sequence[float]) -> bool:
        """Closed membership test: ``low_i <= p_i <= high_i`` in every dimension."""
        check_same_dims(self.low, point)
        return all(lo <= p <= hi for lo, p, hi in zip(self.low, point, self.high))

    # -- constructive operations -------------------------------------------

    def intersection(self, other: "Box") -> "Box | None":
        """Geometric intersection, or None when the closed boxes are disjoint."""
        check_same_dims(self.low, other.low)
        low = tuple(max(a, b) for a, b in zip(self.low, other.low))
        high = tuple(min(a, b) for a, b in zip(self.high, other.high))
        if not dominates(high, low):
            return None
        return Box(low, high)

    def union(self, other: "Box") -> "Box":
        """Smallest box enclosing both operands (the R-tree 'MBR union')."""
        check_same_dims(self.low, other.low)
        low = tuple(min(a, b) for a, b in zip(self.low, other.low))
        high = tuple(max(a, b) for a, b in zip(self.high, other.high))
        return Box(low, high)

    def split_at(self, dim: int, value: float) -> Tuple["Box", "Box"]:
        """Split by the hyperplane ``x_dim = value`` into (lower, upper) halves.

        ``value`` must lie strictly inside the box's extent along ``dim``.
        The halves follow the half-open convention: the lower half is
        ``[low_dim, value)`` and the upper half ``[value, high_dim)``.
        """
        if not self.low[dim] < value < self.high[dim]:
            raise InvalidBoxError(
                f"split value {value} outside open interval "
                f"({self.low[dim]}, {self.high[dim]}) of dim {dim}"
            )
        lower_high = list(self.high)
        lower_high[dim] = value
        upper_low = list(self.low)
        upper_low[dim] = value
        return Box(self.low, tuple(lower_high)), Box(tuple(upper_low), self.high)

    # -- corners -----------------------------------------------------------

    def corner(self, signs: Sequence[int]) -> Coords:
        """The corner selected by a 0/1 vector: coordinate ``high_i`` where ``signs[i]`` is 1.

        Corner ``(0, ..., 0)`` is the low point and ``(1, ..., 1)`` the high
        point. This is the corner indexing used by the Theorem 2 reduction.
        """
        check_same_dims(self.low, signs)
        return tuple(self.high[i] if signs[i] else self.low[i] for i in range(self.dims))

    def corners(self) -> Iterator[Tuple[Tuple[int, ...], Coords]]:
        """Iterate ``(signs, corner)`` over all 2^d corners in sign order."""
        for signs in itertools.product((0, 1), repeat=self.dims):
            yield signs, self.corner(signs)

    # -- conversions ---------------------------------------------------------

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Box":
        """Degenerate box with zero extent at ``point``."""
        coords = as_coords(point)
        return cls(coords, coords)

    @classmethod
    def enclosing(cls, boxes: Iterable["Box"]) -> "Box":
        """Smallest box enclosing every box in a non-empty iterable."""
        it = iter(boxes)
        try:
            result = next(it)
        except StopIteration:
            raise InvalidBoxError("cannot compute the enclosure of zero boxes") from None
        for box in it:
            result = result.union(box)
        return result

    def __repr__(self) -> str:
        return f"Box({list(self.low)}, {list(self.high)})"


def sign_parity(signs: Sequence[int]) -> int:
    """``(-1) ** sum(signs)`` — the inclusion–exclusion sign of a corner."""
    return -1 if sum(signs) % 2 else 1


def universe_box(dims: int, low: float = 0.0, high: float = 1.0) -> Box:
    """Convenience constructor for the cube ``[low, high]^dims``."""
    return Box((low,) * dims, (high,) * dims)
