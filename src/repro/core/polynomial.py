"""Sparse multivariate polynomials stored as coefficient tuples.

The functional box-sum machinery (paper Section 3) represents every object's
value function — and every derived OIFBS corner function — as "a tuple
storing its coefficients".  This module provides that representation: a
sparse map from exponent vectors to coefficients, with exactly the three
capabilities the paper requires of value functions:

1. aggregation with ``+`` and ``-`` (tuples are added coefficient-wise),
2. constant-space representation (``O(k^d)`` coefficients for degree ``k``),
3. cheap evaluation at a point.

On top of those we implement the symbolic integration needed to build the
corner tuples: the antiderivative along one variable and definite integrals
with constant or variable upper bounds (``G(t) = ∫_l^t f`` in the paper's
notation).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from .errors import DimensionMismatchError

#: Exponent vector of a monomial, one non-negative integer per variable.
Exponents = Tuple[int, ...]

#: Tolerance below which coefficients are dropped as numerically zero.
EPSILON = 1e-12


class Polynomial:
    """A sparse polynomial in ``dims`` variables with float coefficients.

    Instances are immutable; all operators return new polynomials.  Terms
    with coefficients of magnitude below :data:`EPSILON` are pruned so that
    round-trips through the inclusion–exclusion identities do not accumulate
    ghost terms.
    """

    __slots__ = ("_dims", "_terms")

    def __init__(self, dims: int, terms: Mapping[Exponents, float] | None = None) -> None:
        if dims < 0:
            raise ValueError(f"dims must be non-negative, got {dims}")
        self._dims = dims
        clean: Dict[Exponents, float] = {}
        if terms:
            for exps, coeff in terms.items():
                if len(exps) != dims:
                    raise DimensionMismatchError(
                        f"exponent vector {exps} has arity {len(exps)}, expected {dims}"
                    )
                if any(e < 0 for e in exps):
                    raise ValueError(f"negative exponent in {exps}")
                if abs(coeff) > EPSILON:
                    clean[tuple(int(e) for e in exps)] = float(coeff)
        self._terms = clean

    # -- constructors ------------------------------------------------------

    @classmethod
    def constant(cls, dims: int, value: float) -> "Polynomial":
        """The constant polynomial ``value`` over ``dims`` variables."""
        if abs(value) <= EPSILON:
            return cls(dims)
        return cls(dims, {(0,) * dims: value})

    @classmethod
    def variable(cls, dims: int, index: int) -> "Polynomial":
        """The polynomial ``x_index`` over ``dims`` variables."""
        if not 0 <= index < dims:
            raise IndexError(f"variable index {index} out of range for dims={dims}")
        exps = [0] * dims
        exps[index] = 1
        return cls(dims, {tuple(exps): 1.0})

    @classmethod
    def monomial(cls, dims: int, exponents: Sequence[int], coeff: float = 1.0) -> "Polynomial":
        """A single term ``coeff * prod(x_i ** exponents[i])``."""
        return cls(dims, {tuple(int(e) for e in exponents): coeff})

    # -- inspection ----------------------------------------------------------

    @property
    def dims(self) -> int:
        """Number of variables."""
        return self._dims

    @property
    def terms(self) -> Mapping[Exponents, float]:
        """Read-only view of the exponent → coefficient map."""
        return dict(self._terms)

    @property
    def n_terms(self) -> int:
        """Number of stored (non-zero) coefficients."""
        return len(self._terms)

    @property
    def is_zero(self) -> bool:
        """True iff no non-zero coefficients remain."""
        return not self._terms

    def degree(self) -> int:
        """Total degree (max over terms of the exponent sum); -1 for the zero polynomial."""
        if not self._terms:
            return -1
        return max(sum(exps) for exps in self._terms)

    def coefficient(self, exponents: Sequence[int]) -> float:
        """Coefficient of the given monomial (0.0 when absent)."""
        return self._terms.get(tuple(int(e) for e in exponents), 0.0)

    def nbytes(self) -> int:
        """Byte footprint under the paper's cost model.

        Each stored coefficient occupies 8 bytes; the exponent vector of a
        term packs into one byte per variable (degrees are tiny constants).
        A fixed 8-byte header records arity and term count.
        """
        return 8 + self.n_terms * (8 + self._dims)

    # -- algebra ------------------------------------------------------------

    def _check_compatible(self, other: "Polynomial") -> None:
        if self._dims != other._dims:
            raise DimensionMismatchError(
                f"polynomial arity mismatch: {self._dims} vs {other._dims}"
            )

    def __add__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        self._check_compatible(other)
        terms = dict(self._terms)
        for exps, coeff in other._terms.items():
            terms[exps] = terms.get(exps, 0.0) + coeff
        return Polynomial(self._dims, terms)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self + (-other)

    def __neg__(self) -> "Polynomial":
        return Polynomial(self._dims, {exps: -c for exps, c in self._terms.items()})

    def scale(self, factor: float) -> "Polynomial":
        """Multiply every coefficient by ``factor``."""
        return Polynomial(self._dims, {exps: c * factor for exps, c in self._terms.items()})

    def __mul__(self, other: "Polynomial | float | int") -> "Polynomial":
        if isinstance(other, (int, float)):
            return self.scale(float(other))
        if not isinstance(other, Polynomial):
            return NotImplemented
        self._check_compatible(other)
        terms: Dict[Exponents, float] = {}
        for e1, c1 in self._terms.items():
            for e2, c2 in other._terms.items():
                key = tuple(a + b for a, b in zip(e1, e2))
                terms[key] = terms.get(key, 0.0) + c1 * c2
        return Polynomial(self._dims, terms)

    __rmul__ = __mul__

    # -- evaluation and substitution ------------------------------------------

    def evaluate(self, point: Sequence[float]) -> float:
        """Value of the polynomial at ``point``."""
        if len(point) != self._dims:
            raise DimensionMismatchError(
                f"point arity {len(point)} != polynomial arity {self._dims}"
            )
        total = 0.0
        for exps, coeff in self._terms.items():
            term = coeff
            for p, e in zip(point, exps):
                if e:
                    term *= p ** e
            total += term
        return total

    def substitute(self, index: int, value: float) -> "Polynomial":
        """Fix variable ``index`` to the constant ``value``.

        The result is still a polynomial over the same arity (the variable
        simply no longer appears), which keeps corner-tuple bookkeeping
        uniform across substitution patterns.
        """
        if not 0 <= index < self._dims:
            raise IndexError(f"variable index {index} out of range for dims={self._dims}")
        terms: Dict[Exponents, float] = {}
        for exps, coeff in self._terms.items():
            e = exps[index]
            new_coeff = coeff * (value ** e if e else 1.0)
            key = exps[:index] + (0,) + exps[index + 1:]
            terms[key] = terms.get(key, 0.0) + new_coeff
        return Polynomial(self._dims, terms)

    # -- integration -----------------------------------------------------------

    def antiderivative(self, index: int) -> "Polynomial":
        """Indefinite integral along variable ``index`` (constant of integration 0)."""
        if not 0 <= index < self._dims:
            raise IndexError(f"variable index {index} out of range for dims={self._dims}")
        terms: Dict[Exponents, float] = {}
        for exps, coeff in self._terms.items():
            e = exps[index]
            key = exps[:index] + (e + 1,) + exps[index + 1:]
            terms[key] = terms.get(key, 0.0) + coeff / (e + 1)
        return Polynomial(self._dims, terms)

    def integral_from(self, index: int, lower: float) -> "Polynomial":
        """``∫_lower^{x_index} self dx_index`` — definite integral with variable upper bound.

        This is the per-dimension step of building ``G(t) = ∫_l^t f`` for the
        OIFBS corner tuples.
        """
        anti = self.antiderivative(index)
        return anti - anti.substitute(index, lower)

    def integral_between(self, index: int, lower: float, upper: float) -> "Polynomial":
        """``∫_lower^upper self dx_index`` with constant bounds; drops the variable."""
        anti = self.antiderivative(index)
        return anti.substitute(index, upper) - anti.substitute(index, lower)

    def integrate_over_box(self, low: Sequence[float], high: Sequence[float]) -> float:
        """Definite integral of the polynomial over the axis-parallel box [low, high]."""
        if len(low) != self._dims or len(high) != self._dims:
            raise DimensionMismatchError("box arity does not match polynomial arity")
        result = self
        for i in range(self._dims):
            result = result.integral_between(i, low[i], high[i])
        return result.coefficient((0,) * self._dims)

    # -- comparisons ------------------------------------------------------------

    def almost_equal(self, other: "Polynomial", tol: float = 1e-9) -> bool:
        """Coefficient-wise comparison with tolerance ``tol``."""
        self._check_compatible(other)
        keys = set(self._terms) | set(other._terms)
        return all(abs(self._terms.get(k, 0.0) - other._terms.get(k, 0.0)) <= tol for k in keys)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._dims == other._dims and self._terms == other._terms

    def __hash__(self) -> int:
        return hash((self._dims, frozenset(self._terms.items())))

    def __repr__(self) -> str:
        if not self._terms:
            return f"Polynomial({self._dims}, 0)"
        parts = []
        for exps in sorted(self._terms, key=lambda e: (-sum(e), e)):
            coeff = self._terms[exps]
            factors = [f"{coeff:g}"]
            for i, e in enumerate(exps):
                if e == 1:
                    factors.append(f"x{i}")
                elif e > 1:
                    factors.append(f"x{i}^{e}")
            parts.append("*".join(factors))
        return f"Polynomial({self._dims}, {' + '.join(parts)})"


def dense_coefficients(poly: Polynomial, max_degree: int) -> Tuple[float, ...]:
    """Flatten a polynomial into the dense tuple layout of the paper's examples.

    Coefficients are listed over all exponent vectors with per-variable degree
    at most ``max_degree``, ordered lexicographically with the highest
    exponents first.  The paper's example tuple ``⟨4, −40, −8, 80⟩`` for
    ``4xy − 40x − 8y + 80`` corresponds to ``max_degree=1`` in two variables.
    """
    axes = [range(max_degree, -1, -1)] * poly.dims
    return tuple(poly.coefficient(exps) for exps in itertools.product(*axes))


def poly_sum(polys: Iterable[Polynomial], dims: int) -> Polynomial:
    """Sum an iterable of polynomials, returning the zero polynomial when empty."""
    total = Polynomial(dims)
    for p in polys:
        total = total + p
    return total
