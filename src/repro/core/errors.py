"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class DimensionMismatchError(ReproError):
    """Objects of incompatible dimensionality were combined.

    Raised, for example, when a 3-dimensional query box is issued against a
    2-dimensional index, or when two polynomials over different variable
    counts are added.
    """


class InvalidBoxError(ReproError):
    """A box was constructed whose low corner does not dominate-below its high corner."""


class InvalidQueryError(ReproError):
    """A query was malformed (wrong arity, empty range, bad parameters)."""


class StorageError(ReproError):
    """Base class for failures in the simulated disk substrate."""


class PageNotFoundError(StorageError):
    """A page id was accessed that was never allocated (or was freed)."""


class PageOverflowError(StorageError):
    """A page payload exceeded the page's byte capacity.

    The simulated pager enforces byte budgets so that fan-out and index sizes
    stay faithful to the paper's 8 KB-page cost model.
    """


class PageCorruptionError(StorageError):
    """A durable page image failed its checksum (torn write, bit rot).

    Raised by the durable pager when a slot's trailing CRC32 does not match
    its contents — the index refuses to return aggregates computed from a
    corrupt page.  Run :meth:`repro.storage.filepager.FilePager.verify` to
    scrub a file for damage proactively.
    """


class WalError(StorageError):
    """The write-ahead log file is malformed (bad magic, wrong page size)."""


class SlabError(StorageError):
    """A slab handle was used after being freed, or a slab invariant broke."""


class ReplicationLogError(StorageError):
    """The replication log or a checkpoint is malformed.

    Raised by :mod:`repro.replog` on bad magic, an impossible LSN sequence
    (a gap inside a non-final segment), a checksum failure on a checkpoint,
    or an undecodable record payload.  A *torn final record* — the expected
    debris of a crash mid-append — is **not** an error: the scan discards
    it cleanly and the next append overwrites it.
    """


class ReplicaDivergedError(ReproError):
    """A revived replica failed its bit-exactness audit against the group.

    Raised by :meth:`repro.resilience.group.ReplicaGroup.catch_up` when a
    member freshly restored from checkpoint + log tail answers a seeded
    probe differently from a live member.  The member stays poisoned: a
    diverged replica must never re-enter the serve rotation.
    """


class TreeInvariantError(ReproError):
    """An internal structural invariant of an index was violated.

    These are raised by the ``check_invariants`` debugging walks, never
    during normal operation.
    """


class NotSupportedError(ReproError):
    """The requested operation is not supported by the chosen backend."""


class ServiceError(ReproError):
    """Base class for failures in the concurrent query service layer."""


class ServiceOverloadedError(ServiceError):
    """The service's admission queue is full (backpressure).

    Raised instead of queueing when ``max_inflight`` requests are executing
    and ``max_queue`` more are already waiting; callers should retry with
    backoff or shed the request.  The saturation snapshot travels on the
    exception — :attr:`inflight` and :attr:`queue_depth` at rejection time,
    plus the optional :attr:`shard` id when a sharded cluster is reporting
    which of its members shed the load — so cluster-level backpressure can
    be attributed without parsing the message.

    The snapshot survives pickling and the RPC wire (see
    :mod:`repro.rpc.codec`): retryable-overload classification in the
    replica-group mutation path depends on these attributes, so losing
    them across a process boundary would silently turn retries into
    poisonings.
    """

    def __init__(
        self,
        message: str,
        *,
        inflight: "int | None" = None,
        queue_depth: "int | None" = None,
        shard: "int | None" = None,
    ) -> None:
        self.raw_message = message
        details = []
        if inflight is not None:
            details.append(f"inflight={inflight}")
        if queue_depth is not None:
            details.append(f"queue_depth={queue_depth}")
        if shard is not None:
            details.append(f"shard={shard}")
        if details:
            message = f"{message} [{', '.join(details)}]"
        super().__init__(message)
        self.inflight = inflight
        self.queue_depth = queue_depth
        self.shard = shard

    def __reduce__(self):
        # The default Exception reduction re-inits from the *formatted*
        # message only, dropping the keyword attributes (and doubling the
        # detail suffix); rebuild from the raw message + kwargs instead.
        return (
            _rebuild_overloaded,
            (self.raw_message, self.inflight, self.queue_depth, self.shard),
        )


def _rebuild_overloaded(message, inflight, queue_depth, shard) -> "ServiceOverloadedError":
    return ServiceOverloadedError(
        message, inflight=inflight, queue_depth=queue_depth, shard=shard
    )


class ServiceClosedError(ServiceError):
    """A request was issued against a service that has been closed."""


class ShardError(ReproError):
    """Base class for failures in the horizontal sharding layer."""


class ShardMapError(ShardError):
    """A shard map was malformed, unfit, or routed to an unknown shard."""


class ShardUnavailableError(ShardError):
    """Every member of a shard's replica group failed to answer.

    Raised by the failover path (:mod:`repro.resilience`) after the retry
    budget is exhausted: each live member was tried (subject to its circuit
    breaker), every attempt raised or timed out, and there is no replica
    left to fail over to.  The exception carries the :attr:`shard` id, the
    number of :attr:`attempts` made and the :attr:`members_tried`, so a
    caller — or the cluster's partial-result path — can attribute the
    outage without parsing the message.  When the cluster was built with
    ``partial_results=True`` this error is converted into a
    :class:`repro.resilience.PartialResult` instead of propagating.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: "int | None" = None,
        attempts: "int | None" = None,
        members_tried: "tuple[int, ...] | None" = None,
    ) -> None:
        self.raw_message = message
        details = []
        if shard is not None:
            details.append(f"shard={shard}")
        if attempts is not None:
            details.append(f"attempts={attempts}")
        if members_tried is not None:
            details.append(f"members_tried={list(members_tried)}")
        if details:
            message = f"{message} [{', '.join(details)}]"
        super().__init__(message)
        self.shard = shard
        self.attempts = attempts
        self.members_tried = members_tried

    def __reduce__(self):
        # Same rationale as ServiceOverloadedError: preserve the outage
        # attribution attributes across pickling / the RPC wire.
        return (
            _rebuild_unavailable,
            (self.raw_message, self.shard, self.attempts, self.members_tried),
        )


def _rebuild_unavailable(message, shard, attempts, members_tried) -> "ShardUnavailableError":
    return ShardUnavailableError(
        message, shard=shard, attempts=attempts, members_tried=members_tried
    )


class RpcError(ReproError):
    """Base class for failures in the multiprocess RPC transport."""


class WireProtocolError(RpcError):
    """A wire frame was malformed (bad CRC, oversized, truncated header).

    Corruption on an in-memory socketpair means a framing bug, not cosmic
    rays, so the client treats it like a crashed worker: fail the call,
    mark the worker dead, let failover take over.
    """


class WorkerCrashedError(RpcError):
    """The worker process died (EOF / reset) before answering a request.

    The replica-group mutation path poisons a member that raises this —
    correctly so: the worker may have applied the mutation before dying,
    and there is no ack to prove it either way.  Recovery is
    ``WorkerClient.restart()`` (a fresh, empty process) followed by a
    log-driven ``catch_up``.
    """
