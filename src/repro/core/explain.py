"""Query introspection: per-sub-query I/O breakdowns.

A simple box-sum fans out into ``2^d`` dominance-sums (or ``3^d − 1`` under
the EO82 reduction); a functional box-sum into ``2^d`` OIFBS corner
evaluations.  :func:`explain_box_sum` / :func:`explain_functional` run one
query while snapshotting the storage counters around every constituent
sub-query, so users can see exactly where the page accesses go — the same
decomposition the paper's cost analyses argue about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..storage.stats import IOCounter
from .errors import NotSupportedError
from .geometry import Box


@dataclass(frozen=True)
class SubQueryCost:
    """One constituent dominance-sum / OIFBS evaluation."""

    label: str
    point: Tuple[float, ...]
    parity: int
    reads: int
    hits: int

    @property
    def accesses(self) -> int:
        """All page touches of this sub-query."""
        return self.reads + self.hits


@dataclass
class QueryReport:
    """The result of a query together with its I/O decomposition."""

    result: float
    reads: int = 0
    hits: int = 0
    parts: List[SubQueryCost] = field(default_factory=list)

    @property
    def accesses(self) -> int:
        """All page touches across the whole query."""
        return self.reads + self.hits

    def by_label(self) -> Dict[str, SubQueryCost]:
        """Index the parts by their sub-query label."""
        return {part.label: part for part in self.parts}

    def summary(self) -> str:
        """A human-readable per-part cost table."""
        lines = [
            f"result={self.result:g}  reads={self.reads}  hits={self.hits}",
        ]
        for part in self.parts:
            sign = "+" if part.parity > 0 else "-"
            lines.append(
                f"  {sign} {part.label:<24} reads={part.reads:<4} hits={part.hits}"
            )
        return "\n".join(lines)


def _counter_of(index) -> Optional[IOCounter]:
    storage = getattr(index, "storage", None)
    return storage.counter if storage is not None else None


def explain_box_sum(index, query: Box) -> QueryReport:
    """Run ``index.box_sum(query)`` with a per-dominance-sum I/O breakdown.

    ``index`` must be a :class:`~repro.core.aggregator.BoxSumIndex` over a
    dominance backend (object backends have no sub-query structure; their
    plain counters already tell the story).
    """
    reduction = getattr(index, "_reduction", None)
    indices = getattr(index, "_indices", None)
    if reduction is None or indices is None:
        raise NotSupportedError(
            "explain_box_sum needs a dominance-backed BoxSumIndex"
        )
    counter = _counter_of(index)
    report = QueryReport(result=0.0)
    total = index._zero
    before_all = counter.snapshot() if counter else None
    for key, point, parity in reduction.query_plan(query):
        before = counter.snapshot() if counter else None
        partial = indices[key].dominance_sum(point)
        if parity > 0:
            total = total + partial
        else:
            total = total + (-partial)
        if counter and before is not None:
            delta = counter.delta(before)
            reads, hits = delta.reads, delta.hits
        else:
            reads = hits = 0
        report.parts.append(
            SubQueryCost(_key_label(key), tuple(point), parity, reads, hits)
        )
    # EO82 adds the grand total outside the plan.
    from .reduction import EO82Reduction

    if isinstance(reduction, EO82Reduction):
        total = total + index._total
    report.result = float(total if not hasattr(total, "total") else total.total)
    if counter and before_all is not None:
        delta = counter.delta(before_all)
        report.reads, report.hits = delta.reads, delta.hits
    return report


def explain_functional(index, query: Box) -> QueryReport:
    """Run a functional box-sum with a per-OIFBS-corner I/O breakdown."""
    reduction = getattr(index, "_reduction", None)
    sub_index = getattr(index, "_index", None)
    if reduction is None or sub_index is None:
        raise NotSupportedError(
            "explain_functional needs a dominance-backed FunctionalBoxSumIndex"
        )
    counter = _counter_of(index)
    report = QueryReport(result=0.0)
    total = 0.0
    before_all = counter.snapshot() if counter else None
    for corner, parity in reduction.query_plan(query):
        before = counter.snapshot() if counter else None
        value = reduction.oifbs(sub_index, corner)
        total += parity * value
        if counter and before is not None:
            delta = counter.delta(before)
            reads, hits = delta.reads, delta.hits
        else:
            reads = hits = 0
        report.parts.append(
            SubQueryCost(f"OIFBS@{_fmt_point(corner)}", corner, parity, reads, hits)
        )
    report.result = total
    if counter and before_all is not None:
        delta = counter.delta(before_all)
        report.reads, report.hits = delta.reads, delta.hits
    return report


def _key_label(key) -> str:
    if isinstance(key, tuple) and key and isinstance(key[0], tuple):
        dims_subset, sides = key
        side_names = ",".join(
            f"{d}{'lo' if s == 0 else 'hi'}" for d, s in zip(dims_subset, sides)
        )
        return f"EO82[{side_names}]"
    return "corner" + "".join(str(s) for s in key)


def _fmt_point(point) -> str:
    return "(" + ",".join(f"{c:g}" for c in point) + ")"
