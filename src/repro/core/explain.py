"""Query introspection: per-sub-query I/O breakdowns and full span profiles.

A simple box-sum fans out into ``2^d`` dominance-sums (or ``3^d − 1`` under
the EO82 reduction); a functional box-sum into ``2^d`` OIFBS corner
evaluations.  :func:`explain_box_sum` / :func:`explain_functional` run one
query while snapshotting the storage counters around every constituent
sub-query, so users can see exactly where the page accesses go — the same
decomposition the paper's cost analyses argue about.

:func:`profile` goes deeper: it runs one query under an active
:class:`~repro.obs.Tracer`, producing the full hierarchical span tree
(box_sum → per-corner dominance_sum → node descents → I/O events) with
per-span I/O deltas and CPU time, plus the overall counter delta for
cross-checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs import trace as _trace
from ..storage.stats import IOCounter
from .errors import NotSupportedError
from .geometry import Box
from .reduction import format_key as _key_label


@dataclass(frozen=True)
class SubQueryCost:
    """One constituent dominance-sum / OIFBS evaluation."""

    label: str
    point: Tuple[float, ...]
    parity: int
    reads: int
    hits: int

    @property
    def accesses(self) -> int:
        """All page touches of this sub-query."""
        return self.reads + self.hits


@dataclass
class QueryReport:
    """The result of a query together with its I/O decomposition."""

    result: float
    reads: int = 0
    hits: int = 0
    parts: List[SubQueryCost] = field(default_factory=list)

    @property
    def accesses(self) -> int:
        """All page touches across the whole query."""
        return self.reads + self.hits

    def by_label(self) -> Dict[str, SubQueryCost]:
        """Index the parts by their sub-query label."""
        return {part.label: part for part in self.parts}

    def summary(self) -> str:
        """A human-readable per-part cost table."""
        lines = [
            f"result={self.result:g}  reads={self.reads}  hits={self.hits}",
        ]
        for part in self.parts:
            sign = "+" if part.parity > 0 else "-"
            lines.append(f"  {sign} {part.label:<24} reads={part.reads:<4} hits={part.hits}")
        return "\n".join(lines)


def _counter_of(index) -> Optional[IOCounter]:
    storage = getattr(index, "storage", None)
    return storage.counter if storage is not None else None


def explain_box_sum(index, query: Box) -> QueryReport:
    """Run ``index.box_sum(query)`` with a per-dominance-sum I/O breakdown.

    ``index`` must be a :class:`~repro.core.aggregator.BoxSumIndex` over a
    dominance backend (object backends have no sub-query structure; their
    plain counters already tell the story).
    """
    reduction = getattr(index, "_reduction", None)
    indices = getattr(index, "_indices", None)
    if reduction is None or indices is None:
        raise NotSupportedError("explain_box_sum needs a dominance-backed BoxSumIndex")
    counter = _counter_of(index)
    report = QueryReport(result=0.0)
    total = index._zero
    before_all = counter.snapshot() if counter else None
    for key, point, parity in reduction.query_plan(query):
        before = counter.snapshot() if counter else None
        partial = indices[key].dominance_sum(point)
        if parity > 0:
            total = total + partial
        else:
            total = total + (-partial)
        if counter and before is not None:
            delta = counter.delta(before)
            reads, hits = delta.reads, delta.hits
        else:
            reads = hits = 0
        report.parts.append(SubQueryCost(_key_label(key), tuple(point), parity, reads, hits))
    # EO82 adds the grand total outside the plan.
    from .reduction import EO82Reduction

    if isinstance(reduction, EO82Reduction):
        total = total + index._total
    report.result = float(total if not hasattr(total, "total") else total.total)
    if counter and before_all is not None:
        delta = counter.delta(before_all)
        report.reads, report.hits = delta.reads, delta.hits
    return report


def explain_functional(index, query: Box) -> QueryReport:
    """Run a functional box-sum with a per-OIFBS-corner I/O breakdown."""
    reduction = getattr(index, "_reduction", None)
    sub_index = getattr(index, "_index", None)
    if reduction is None or sub_index is None:
        raise NotSupportedError("explain_functional needs a dominance-backed FunctionalBoxSumIndex")
    counter = _counter_of(index)
    report = QueryReport(result=0.0)
    total = 0.0
    before_all = counter.snapshot() if counter else None
    for corner, parity in reduction.query_plan(query):
        before = counter.snapshot() if counter else None
        value = reduction.oifbs(sub_index, corner)
        total += parity * value
        if counter and before is not None:
            delta = counter.delta(before)
            reads, hits = delta.reads, delta.hits
        else:
            reads = hits = 0
        report.parts.append(
            SubQueryCost(f"OIFBS@{_fmt_point(corner)}", corner, parity, reads, hits)
        )
    report.result = total
    if counter and before_all is not None:
        delta = counter.delta(before_all)
        report.reads, report.hits = delta.reads, delta.hits
    return report


def _fmt_point(point) -> str:
    return "(" + ",".join(f"{c:g}" for c in point) + ")"


# -- span-tree profiling -------------------------------------------------------


@dataclass
class QueryProfile:
    """One query's result, span tree, and overall I/O delta.

    ``trace`` is the JSON-ready payload of :meth:`repro.obs.Tracer.to_dict`
    (``schema_version`` + nested spans with inclusive and self I/O deltas);
    ``reads``/``hits``/``writes`` are the storage counter's delta over the
    whole call, so ``trace["spans"][0]`` — the root span — must agree with
    them when every page touch happens inside the traced query.
    """

    op: str
    result: float
    trace: Dict[str, Any]
    reads: int = 0
    hits: int = 0
    writes: int = 0

    @property
    def total_ios(self) -> int:
        """Reads plus writes — the paper's cost unit."""
        return self.reads + self.writes

    def render(self) -> str:
        """Header line plus the indented span tree."""
        header = (
            f"{self.op}: result={self.result:g}  "
            f"reads={self.reads} hits={self.hits} writes={self.writes}"
        )
        body = _trace.render_dict(self.trace)
        return header + ("\n" + body if body else "")

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize the whole profile (metadata + span tree) to JSON."""
        import json

        return json.dumps(
            {
                "op": self.op,
                "result": self.result,
                "reads": self.reads,
                "hits": self.hits,
                "writes": self.writes,
                "trace": self.trace,
            },
            indent=indent,
            default=str,
        )


def profile(index, query: Box, op: str = "auto", record_io: bool = False) -> QueryProfile:
    """Run one query under tracing and return its full span profile.

    ``index`` is any facade or structure whose query method takes the query
    box — :class:`~repro.core.aggregator.BoxSumIndex` (``box_sum``),
    :class:`~repro.core.aggregator.FunctionalBoxSumIndex`
    (``functional_box_sum``), or a raw structure exposing one of those /
    ``range_count``.  ``op="auto"`` picks the first of ``box_sum``,
    ``functional_box_sum``, ``range_count`` the index provides.

    ``record_io=True`` additionally logs one event per buffer-pool page
    access (costlier; off by default).
    """
    if op == "auto":
        for candidate in ("box_sum", "functional_box_sum", "range_count"):
            if callable(getattr(index, candidate, None)):
                op = candidate
                break
        else:
            raise NotSupportedError(f"{type(index).__name__} exposes no profilable query method")
    method = getattr(index, op, None)
    if not callable(method):
        raise NotSupportedError(f"{type(index).__name__} has no query method {op!r}")
    counter = _counter_of(index)
    storage = getattr(index, "storage", None)
    buffer = storage.buffer if (record_io and storage is not None) else None
    before = counter.snapshot() if counter else None
    with _trace.tracing(counter=counter, buffer=buffer) as tracer:
        result = method(query)
    payload = tracer.to_dict()
    prof = QueryProfile(op=op, result=float(result), trace=payload)
    if counter and before is not None:
        delta = counter.delta(before)
        prof.reads, prof.hits, prof.writes = delta.reads, delta.hits, delta.writes
    return prof
