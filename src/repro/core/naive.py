"""Brute-force reference implementations (correctness oracles).

Every index in this package is tested against these scan-based baselines.
They are also the "straightforward approach" the paper's introduction
dismisses for performance — useful to quantify exactly why specialized
aggregate indices matter.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from .errors import DimensionMismatchError
from .geometry import Box, Coords, as_coords, strictly_dominates
from .polynomial import Polynomial
from .values import Value


class NaiveDominanceSum:
    """A flat list of weighted points answering dominance-sums by full scan."""

    def __init__(self, dims: int, zero: Value = 0.0) -> None:
        self.dims = dims
        self.zero = zero
        self._points: List[Tuple[Coords, Value]] = []

    def insert(self, point: Sequence[float], value: Value) -> None:
        """Add a weighted point."""
        coords = as_coords(point)
        if len(coords) != self.dims:
            raise DimensionMismatchError(f"point arity {len(coords)} != index dims {self.dims}")
        self._points.append((coords, value))

    def bulk_load(self, items: Iterable[Tuple[Sequence[float], Value]]) -> None:
        """Add many weighted points at once."""
        for point, value in items:
            self.insert(point, value)

    def dominance_sum(self, query: Sequence[float]) -> Value:
        """Sum of values of stored points strictly dominated by ``query``."""
        q = as_coords(query)
        total = self.zero
        for point, value in self._points:
            if strictly_dominates(q, point):
                total = total + value
        return total

    def total(self) -> Value:
        """Sum of every stored value."""
        result = self.zero
        for _point, value in self._points:
            result = result + value
        return result

    def __len__(self) -> int:
        return len(self._points)


class NaiveBoxSum:
    """A flat list of weighted boxes answering simple box-sums by full scan."""

    def __init__(self, dims: int, zero: Value = 0.0) -> None:
        self.dims = dims
        self.zero = zero
        self._objects: List[Tuple[Box, Value]] = []

    def insert(self, box: Box, value: Value) -> None:
        """Add a weighted box object."""
        if box.dims != self.dims:
            raise DimensionMismatchError(f"box dims {box.dims} != index dims {self.dims}")
        self._objects.append((box, value))

    def box_sum(self, query: Box) -> Value:
        """Sum of values of objects intersecting ``query`` (paper semantics)."""
        total = self.zero
        for box, value in self._objects:
            if box.intersects(query):
                total = total + value
        return total

    def box_count(self, query: Box) -> int:
        """Number of objects intersecting ``query``."""
        return sum(1 for box, _value in self._objects if box.intersects(query))

    def total(self) -> Value:
        """Sum of every stored value."""
        result = self.zero
        for _box, value in self._objects:
            result = result + value
        return result

    def __len__(self) -> int:
        return len(self._objects)


class NaiveFunctionalBoxSum:
    """Scan-based functional box-sum: integrate each value function over the overlap."""

    def __init__(self, dims: int) -> None:
        self.dims = dims
        self._objects: List[Tuple[Box, Polynomial]] = []

    def insert(self, box: Box, function: Polynomial | float) -> None:
        """Add an object whose value function is a polynomial (or constant)."""
        if box.dims != self.dims:
            raise DimensionMismatchError(f"box dims {box.dims} != index dims {self.dims}")
        if isinstance(function, (int, float)):
            function = Polynomial.constant(self.dims, float(function))
        if function.dims != self.dims:
            raise DimensionMismatchError(
                f"function arity {function.dims} != index dims {self.dims}"
            )
        self._objects.append((box, function))

    def functional_box_sum(self, query: Box) -> float:
        """Total of ``∫ f over (object ∩ query)`` across all overlapping objects."""
        total = 0.0
        for box, function in self._objects:
            overlap = box.intersection(query)
            if overlap is None:
                continue
            total += function.integrate_over_box(overlap.low, overlap.high)
        return total

    def __len__(self) -> int:
        return len(self._objects)


def brute_force_box_sum(
    objects: Iterable[Tuple[Box, Value]], query: Box, zero: Value = 0.0
) -> Value:
    """One-shot scan box-sum used directly by tests."""
    total = zero
    for box, value in objects:
        if box.intersects(query):
            total = total + value
    return total
