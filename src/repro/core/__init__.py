"""Core layer: geometry, value algebra, reductions and the public facades.

Dominance-sum index protocol
----------------------------

Every dominance-sum structure in this package (aggregated B+-tree, static
ECDF-tree, ECDF-Bu/Bq-trees, BA-tree, naive scan) is duck-typed to:

* ``insert(point, value)`` — add a weighted point;
* ``dominance_sum(point) -> value`` — sum of values of stored points
  *strictly* dominated by ``point`` in every dimension;
* ``total() -> value`` — sum of everything stored;
* ``bulk_load(items)`` — build from an iterable of ``(point, value)``.

The reduction layer (:mod:`repro.core.reduction`,
:mod:`repro.core.functional`) turns box-sum and functional box-sum queries
into calls against that protocol; :mod:`repro.core.aggregator` exposes the
user-facing :class:`~repro.core.aggregator.BoxSumIndex` and
:class:`~repro.core.aggregator.FunctionalBoxSumIndex`.
"""

from .errors import (
    DimensionMismatchError,
    InvalidBoxError,
    InvalidQueryError,
    NotSupportedError,
    PageNotFoundError,
    PageOverflowError,
    ReproError,
    SlabError,
    StorageError,
    TreeInvariantError,
)
from .geometry import (
    Box,
    Coords,
    as_coords,
    dominates,
    intervals_intersect,
    sign_parity,
    strictly_dominates,
    universe_box,
)
from .explain import QueryReport, SubQueryCost, explain_box_sum, explain_functional
from .naive import NaiveBoxSum, NaiveDominanceSum, NaiveFunctionalBoxSum
from .polynomial import Polynomial, dense_coefficients, poly_sum
from .values import (
    BoundedValue,
    SumCount,
    Value,
    is_zero_value,
    value_nbytes,
    values_equal,
    zero_like,
)

__all__ = [
    "ReproError",
    "DimensionMismatchError",
    "InvalidBoxError",
    "InvalidQueryError",
    "NotSupportedError",
    "PageNotFoundError",
    "PageOverflowError",
    "SlabError",
    "StorageError",
    "TreeInvariantError",
    "Box",
    "Coords",
    "as_coords",
    "dominates",
    "strictly_dominates",
    "intervals_intersect",
    "sign_parity",
    "universe_box",
    "Polynomial",
    "dense_coefficients",
    "poly_sum",
    "BoundedValue",
    "SumCount",
    "Value",
    "value_nbytes",
    "values_equal",
    "zero_like",
    "is_zero_value",
    "NaiveBoxSum",
    "NaiveDominanceSum",
    "NaiveFunctionalBoxSum",
    "QueryReport",
    "SubQueryCost",
    "explain_box_sum",
    "explain_functional",
]
