"""Aggregate value protocol: what a dominance-sum index stores and adds up.

The paper's indices are generic in the value they aggregate:

* the *simple* box-sum stores plain numbers (SUM of weights; COUNT is the
  special case where every weight is 1);
* the *functional* box-sum stores polynomial coefficient tuples, "with the
  difference that now we store and manipulate value functions instead of
  single values" (Section 3);
* AVG needs SUM and COUNT simultaneously, which we support with the
  :class:`SumCount` pair.

Any value type works with every index in this package as long as it
supports binary ``+``, unary ``-`` and equality; this module centralizes
the zero element and the byte-size accounting the storage layer uses to
compute page fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from .errors import NotSupportedError
from .polynomial import Polynomial

#: The union of value types shipped with the library.  Third-party types that
#: implement the same operators work equally well.
Value = Union[float, int, Polynomial, "SumCount"]


@dataclass(frozen=True)
class SumCount:
    """A (sum, count) pair aggregated component-wise; supports AVG queries.

    Inserting an object with weight ``w`` contributes ``SumCount(w, 1)``;
    the average over a query region is ``total.sum / total.count``.
    """

    total: float
    count: float

    def __add__(self, other: "SumCount") -> "SumCount":
        if not isinstance(other, SumCount):
            return NotImplemented
        return SumCount(self.total + other.total, self.count + other.count)

    def __neg__(self) -> "SumCount":
        return SumCount(-self.total, -self.count)

    def average(self) -> float:
        """``sum / count``; raises when the count is zero (empty region)."""
        if self.count == 0:
            raise ZeroDivisionError("average of an empty aggregate")
        return self.total / self.count


@dataclass(frozen=True)
class BoundedValue:
    """A certified interval answer: ``lo <= exact <= hi`` plus a point estimate.

    This is the currency of the approximate tier (:mod:`repro.approx`): a
    synopsis probe returns one, and the ``2^d`` corner probes of a box-sum
    are combined by *interval arithmetic* — addition adds endpoints,
    negation swaps them — so the certified band survives every reduction
    and every cross-shard merge.  IEEE-754 addition is monotone, so
    accumulating the ``lo``/``estimate``/``hi`` streams in the same order
    preserves ``lo <= estimate <= hi`` bit-for-bit; the constructor clamps
    the estimate into the band as a belt-and-suspenders measure.

    A :class:`BoundedValue` is deliberately *not* a ``float`` subclass: a
    degraded answer must never be confusable with an exact one.
    """

    lo: float
    hi: float
    estimate: float

    def __post_init__(self) -> None:
        lo, hi = float(self.lo), float(self.hi)
        if not lo <= hi:
            raise ValueError(f"invalid interval: lo {lo} > hi {hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "estimate", min(max(float(self.estimate), lo), hi))

    @classmethod
    def exact(cls, value: float) -> "BoundedValue":
        """The degenerate interval ``[value, value]`` (an exact contribution)."""
        v = float(value)
        return cls(v, v, v)

    @property
    def width(self) -> float:
        """Size of the certified band (0.0 when the value is exact)."""
        return self.hi - self.lo

    @property
    def is_exact(self) -> bool:
        """True when the band has collapsed to a single point."""
        return self.lo == self.hi

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the certified band."""
        return self.lo <= float(value) <= self.hi

    def widen(self, lo_delta: float, hi_delta: float) -> "BoundedValue":
        """Grow the band by ``[lo_delta, hi_delta]`` (``lo_delta <= 0 <= hi_delta``).

        Used for bounded staleness: mutations applied after a synopsis was
        built shift the exact answer by at most their signed-weight
        envelope, so widening by that envelope keeps the band sound.
        """
        if lo_delta > 0 or hi_delta < 0:
            raise ValueError(f"widen deltas must satisfy lo <= 0 <= hi, got ({lo_delta}, {hi_delta})")
        return BoundedValue(self.lo + lo_delta, self.hi + hi_delta, self.estimate)

    def __add__(self, other: "BoundedValue | float | int") -> "BoundedValue":
        if isinstance(other, BoundedValue):
            return BoundedValue(
                self.lo + other.lo, self.hi + other.hi, self.estimate + other.estimate
            )
        if isinstance(other, (int, float)) and not isinstance(other, bool):
            shift = float(other)
            return BoundedValue(self.lo + shift, self.hi + shift, self.estimate + shift)
        return NotImplemented

    __radd__ = __add__

    def __neg__(self) -> "BoundedValue":
        return BoundedValue(-self.hi, -self.lo, -self.estimate)

    def __sub__(self, other: "BoundedValue | float | int") -> "BoundedValue":
        if isinstance(other, BoundedValue):
            return self + (-other)
        if isinstance(other, (int, float)) and not isinstance(other, bool):
            return self + (-float(other))
        return NotImplemented


#: Canonical zero elements, keyed by how the caller wants to aggregate.
SCALAR_ZERO = 0.0
SUMCOUNT_ZERO = SumCount(0.0, 0.0)


def zero_like(value: Value) -> Value:
    """The additive identity for ``value``'s type."""
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise NotSupportedError("bool is not a supported aggregate value")
    if isinstance(value, (int, float)):
        return 0.0
    if isinstance(value, Polynomial):
        return Polynomial(value.dims)
    if isinstance(value, SumCount):
        return SUMCOUNT_ZERO
    raise NotSupportedError(f"unsupported aggregate value type: {type(value).__name__}")


def value_nbytes(value: Value) -> int:
    """Byte footprint of a value under the storage layer's cost model.

    Scalars are 8-byte floats; a :class:`SumCount` is two of them; a
    polynomial reports its own coefficient-tuple size.  The page layout uses
    this to derive fan-out, which is how degree-2 value functions end up with
    smaller fan-out (and hence bigger indices) than degree-0 ones, exactly
    the effect Figure 9c measures.
    """
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, SumCount):
        return 16
    if isinstance(value, Polynomial):
        return value.nbytes()
    raise NotSupportedError(f"unsupported aggregate value type: {type(value).__name__}")


def values_equal(a: Value, b: Value, tol: float = 1e-9) -> bool:
    """Tolerant equality across every shipped value type (useful in tests)."""
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return abs(float(a) - float(b)) <= tol * max(1.0, abs(float(a)), abs(float(b)))
    if isinstance(a, Polynomial) and isinstance(b, Polynomial):
        return a.almost_equal(b, tol)
    if isinstance(a, SumCount) and isinstance(b, SumCount):
        return abs(a.total - b.total) <= tol and abs(a.count - b.count) <= tol
    return bool(a == b)


def is_zero_value(value: Value, tol: float = 1e-12) -> bool:
    """True when ``value`` is (numerically) the additive identity."""
    if isinstance(value, (int, float)):
        return abs(float(value)) <= tol
    if isinstance(value, Polynomial):
        return value.is_zero
    if isinstance(value, SumCount):
        return abs(value.total) <= tol and abs(value.count) <= tol
    return False


def accumulate(values: Any, zero: Value) -> Value:
    """Sum an iterable of values starting from ``zero``."""
    total = zero
    for v in values:
        total = total + v
    return total
