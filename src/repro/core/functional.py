"""The functional box-sum reduction (paper Section 3, Theorem 3).

An object is a box ``[l, h]`` with a polynomial value function ``f``; its
contribution to a query ``q`` is ``∫ f`` over ``box ∩ q``.  The reduction
has two halves:

**Insertion** (Figure 5a, generalized to d dimensions).  Let
``G(t) = ∫_{l_1}^{t_1} … ∫_{l_d}^{t_d} f``.  Inserting the object adds, for
every corner selector ``s ∈ {0,1}^d``, the *corner tuple* ``u_s`` at the
corner point ``p_s`` (coordinate ``h_i`` where ``s_i = 1``, else ``l_i``)::

    u_s = G with, for each i where s_i = 1, the substitution difference
          (G|_{t_i := h_i} − G) applied

so that for any point ``x`` dominating a set of corners the tuples
telescope to ``∫ f over (box ∩ [p_min, x])`` — the OIFBS at ``x``.  In 2-d
these are exactly the four updates ``v_1 … v_4`` of the paper.

**Query** (Figure 4).  A functional box-sum over ``q`` is the alternating
sum of OIFBS values at the ``2^d`` corners of ``q``, where a corner using
``k`` low coordinates carries sign ``(-1)^k``.  Each OIFBS evaluation is a
dominance-sum over the (single) polynomial-valued index followed by an
evaluation of the aggregated tuple at the corner.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Tuple

from .errors import DimensionMismatchError
from .geometry import Box, Coords
from .polynomial import Polynomial


class FunctionalReduction:
    """Builds corner tuples for insertion and corner plans for querying."""

    def __init__(self, dims: int) -> None:
        if dims < 1:
            raise DimensionMismatchError(f"dims must be >= 1, got {dims}")
        self.dims = dims

    # -- insertion side ---------------------------------------------------------

    def origin_integral(self, box: Box, function: Polynomial) -> Polynomial:
        """``G(t) = ∫_{l}^{t} f`` — antiderivative anchored at the object's low corner."""
        self._check_box(box)
        self._check_function(function)
        g = function
        for i in range(self.dims):
            g = g.integral_from(i, box.low[i])
        return g

    def corner_tuples(
        self, box: Box, function: Polynomial | float
    ) -> List[Tuple[Coords, Polynomial]]:
        """The ``2^d`` point-insertions encoding one object.

        Returns ``(corner point, corner tuple)`` pairs; inserting them into a
        polynomial-valued dominance-sum index implements the hypothetical
        OIFBS index of Figure 5a.
        """
        self._check_box(box)
        if isinstance(function, (int, float)):
            function = Polynomial.constant(self.dims, float(function))
        self._check_function(function)
        g = self.origin_integral(box, function)
        result: List[Tuple[Coords, Polynomial]] = []
        for signs in itertools.product((0, 1), repeat=self.dims):
            u = g
            for i in range(self.dims):
                if signs[i]:
                    u = u.substitute(i, box.high[i]) - u
            result.append((box.corner(signs), u))
        return result

    # -- query side ----------------------------------------------------------------

    def query_plan(self, query: Box) -> Iterator[Tuple[Coords, int]]:
        """Yield ``(corner point, parity)`` over the query box's ``2^d`` corners.

        Parity is ``(-1)^k`` where ``k`` counts low-side coordinates: in 2-d,
        ``+UR − UL − LR + LL`` (Figure 4).
        """
        self._check_box(query)
        for signs in itertools.product((0, 1), repeat=self.dims):
            corner = query.corner(signs)
            n_low = self.dims - sum(signs)
            parity = -1 if n_low % 2 else 1
            yield corner, parity

    def oifbs(self, index: object, point: Coords) -> float:
        """Origin-involved functional box-sum at ``point``.

        Aggregates the corner tuples of all stored corners strictly dominated
        by ``point`` and evaluates the resulting polynomial at ``point``.
        """
        aggregated: Polynomial = index.dominance_sum(point)  # type: ignore[attr-defined]
        return aggregated.evaluate(point)

    def functional_box_sum(self, index: object, query: Box) -> float:
        """Evaluate a functional box-sum against a polynomial-valued index."""
        from ..obs import trace as _trace

        tracer = _trace._ACTIVE
        total = 0.0
        for corner, parity in self.query_plan(query):
            if tracer is None:
                total += parity * self.oifbs(index, corner)
            else:
                label = "(" + ",".join(f"{c:g}" for c in corner) + ")"
                with tracer.span("oifbs", corner=label, parity=parity):
                    total += parity * self.oifbs(index, corner)
        return total

    # -- validation ------------------------------------------------------------------

    def _check_box(self, box: Box) -> None:
        if box.dims != self.dims:
            raise DimensionMismatchError(f"box dims {box.dims} != reduction dims {self.dims}")

    def _check_function(self, function: Polynomial) -> None:
        if function.dims != self.dims:
            raise DimensionMismatchError(
                f"value function arity {function.dims} != reduction dims {self.dims}"
            )
