"""Public facades: :class:`BoxSumIndex` and :class:`FunctionalBoxSumIndex`.

These wire a *reduction* (Section 2/3) to a set of *dominance-sum backends*
(Sections 4/5), or — for the R-tree family — index the objects directly.

Backends
--------

==============  ==============================================================
name            structure
==============  ==============================================================
``ba``          BA-tree (the paper's proposal; default)
``ecdf-bu``     ECDF-Bu-tree (update-optimized borders)
``ecdf-bq``     ECDF-Bq-tree (query-optimized prefix borders)
``ecdf``        static main-memory ECDF-tree (bulk-build only)
``bptree``      aggregated B+-tree (1-d only)
``naive``       scan-based oracle
``ar``          aR-tree — direct object indexing, aggregate-augmented R*-tree
``rstar``       plain R*-tree — direct object indexing, no aggregates
==============  ==============================================================

The dominance-based backends of a :class:`BoxSumIndex` share one
:class:`~repro.storage.StorageContext` (the paper runs its four
dominance-sum trees against a single 10 MB LRU buffer).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs import trace as _trace
from ..storage import StorageContext, polynomial_value_bytes
from .errors import DimensionMismatchError, InvalidQueryError, NotSupportedError
from .geometry import Box
from .naive import NaiveDominanceSum
from .polynomial import Polynomial
from .reduction import (
    CornerReduction,
    EO82Reduction,
    Probe,
    ProbeValues,
    combine_probe_values,
    format_key,
)
from .functional import FunctionalReduction
from .values import SumCount, Value

#: Backends that answer the dominance-sum protocol.
DOMINANCE_BACKENDS = ("ba", "ecdf-bu", "ecdf-bq", "ecdf", "ecdf-log", "bptree", "naive")
#: Backends that index the objects themselves.
OBJECT_BACKENDS = ("ar", "rstar")


def make_dominance_index(
    backend: str,
    dims: int,
    storage: Optional[StorageContext] = None,
    zero: Value = 0.0,
    value_bytes: Optional[int] = None,
    **kwargs: object,
):
    """Construct a dominance-sum index of the requested backend and arity.

    ``storage`` may be shared across indices; when omitted a private context
    with the library defaults is created (except for the purely in-memory
    ``naive`` and ``ecdf`` backends, which need none).
    """
    if backend == "naive":
        return NaiveDominanceSum(dims, zero=zero)
    if backend == "ecdf":
        from ..ecdf.ecdf_tree import StaticEcdfTree

        return StaticEcdfTree(dims, zero=zero)
    if backend == "ecdf-log":
        from ..ecdf.dynamized import LogarithmicEcdfTree

        return LogarithmicEcdfTree(dims, zero=zero, **kwargs)
    if storage is None:
        storage = StorageContext()
    if backend == "bptree":
        if dims != 1:
            raise NotSupportedError("the aggregated B+-tree backend is 1-dimensional")
        from ..bptree import AggBPlusTree

        return AggBPlusTree(storage, zero=zero, value_bytes=value_bytes, **kwargs)
    if backend == "ba":
        from ..batree import BATree

        return BATree(storage, dims, zero=zero, value_bytes=value_bytes, **kwargs)
    if backend in ("ecdf-bu", "ecdf-bq"):
        from ..ecdf.ecdf_b import EcdfBTree

        variant = "u" if backend.endswith("u") else "q"
        return EcdfBTree(
            storage, dims, variant=variant, zero=zero, value_bytes=value_bytes, **kwargs
        )
    raise NotSupportedError(f"unknown dominance backend {backend!r}")


class BoxSumIndex:
    """SUM/COUNT/AVG over boxes intersecting a query box (the simple problem).

    With a dominance backend this maintains ``2^d`` dominance-sum indices
    (one per object corner, Theorem 2) over a shared storage context; with
    ``reduction="eo82"`` it instead maintains the ``3^d − 1`` indices of the
    prior technique [13] — useful for head-to-head reduction benchmarks.
    With the ``ar``/``rstar`` backends objects are indexed directly.

    ``measure`` selects what is aggregated: ``"sum"`` stores scalar weights,
    ``"count"`` stores 1 per object, ``"sum+count"`` stores
    :class:`~repro.core.values.SumCount` pairs and additionally enables
    :meth:`box_avg`.
    """

    def __init__(
        self,
        dims: int,
        backend: str = "ba",
        reduction: str = "corner",
        measure: str = "sum",
        storage: Optional[StorageContext] = None,
        page_size: int = 8192,
        buffer_pages: Optional[int] = 1280,
        **backend_kwargs: object,
    ) -> None:
        if dims < 1:
            raise DimensionMismatchError(f"dims must be >= 1, got {dims}")
        if measure not in ("sum", "count", "sum+count"):
            raise InvalidQueryError(f"unknown measure {measure!r}")
        self.dims = dims
        self.backend = backend
        self.measure = measure
        self.num_objects = 0
        self._zero: Value = SumCount(0.0, 0.0) if measure == "sum+count" else 0.0
        if backend in OBJECT_BACKENDS:
            if reduction != "corner":
                raise NotSupportedError("object backends do not use a reduction")
            self.storage = storage or StorageContext(page_size=page_size, buffer_pages=buffer_pages)
            self._reduction = None
            from ..rtree import ARTree, RStarTree

            cls = ARTree if backend == "ar" else RStarTree
            self._object_index = cls(self.storage, dims, **backend_kwargs)
            return
        if backend not in DOMINANCE_BACKENDS:
            raise NotSupportedError(f"unknown backend {backend!r}")
        needs_storage = backend not in ("naive", "ecdf", "ecdf-log")
        if needs_storage:
            self.storage = storage or StorageContext(page_size=page_size, buffer_pages=buffer_pages)
        else:
            self.storage = storage
        value_bytes = 16 if measure == "sum+count" else 8
        if reduction == "corner":
            self._reduction = CornerReduction(dims)
        elif reduction == "eo82":
            self._reduction = EO82Reduction(dims)
        else:
            raise NotSupportedError(f"unknown reduction {reduction!r}")
        self._object_index = None
        self._total: Value = self._zero
        self._indices: Dict[object, object] = {}
        for key in self._reduction.index_keys():
            arity = dims if reduction == "corner" else len(key[0])
            sub_backend = backend
            if backend == "bptree" and arity != 1:
                raise NotSupportedError("the bptree backend only supports 1-dimensional box-sums")
            self._indices[key] = make_dominance_index(
                sub_backend,
                arity,
                storage=self.storage,
                zero=self._zero,
                value_bytes=value_bytes,
                **backend_kwargs,
            )

    # -- updates ------------------------------------------------------------------

    def _measure_value(self, value: float) -> Value:
        if self.measure == "sum":
            return float(value)
        if self.measure == "count":
            return 1.0
        return SumCount(float(value), 1.0)

    def insert(self, box: Box, value: float = 1.0) -> None:
        """Add one weighted box object."""
        self._check(box)
        measured = self._measure_value(value)
        self.num_objects += 1
        if self._object_index is not None:
            self._object_index.insert(box, measured)
            return
        self._total = self._total + measured
        for key, point, v in self._reduction.insertions(box, measured):
            self._indices[key].insert(point, v)

    def delete(self, box: Box, value: float = 1.0) -> None:
        """Remove one previously inserted object (by inserting its negation).

        As in the paper's aggregate indices, the structures store aggregates
        rather than objects, so deletion is the insertion of the inverse
        weight; the caller must pass the same box and value used at insert.
        """
        self._check(box)
        measured = self._measure_value(value)
        self.num_objects -= 1
        if self._object_index is not None:
            self._object_index.delete(box, measured)
            return
        self._total = self._total + (-measured)
        for key, point, v in self._reduction.insertions(box, measured):
            self._indices[key].insert(point, -v)

    def bulk_load(self, objects: Iterable[Tuple[Box, float]]) -> None:
        """Build from scratch out of ``(box, weight)`` pairs (bulk-loading backends)."""
        objects = list(objects)
        for box, _value in objects:
            self._check(box)
        self.num_objects = len(objects)
        if self._object_index is not None:
            self._object_index.bulk_load([(box, self._measure_value(v)) for box, v in objects])
            return
        self._total = self._zero
        per_index: Dict[object, List[Tuple[Sequence[float], Value]]] = {
            key: [] for key in self._indices
        }
        for box, value in objects:
            measured = self._measure_value(value)
            self._total = self._total + measured
            for key, point, v in self._reduction.insertions(box, measured):
                per_index[key].append((point, v))
        for key, items in per_index.items():
            self._indices[key].bulk_load(items)

    # -- queries ----------------------------------------------------------------------

    def box_sum(self, query: Box) -> float:
        """SUM of weights of objects intersecting ``query``."""
        result = self._aggregate(query)
        if isinstance(result, SumCount):
            return result.total
        return float(result)

    def box_count(self, query: Box) -> float:
        """COUNT of objects intersecting ``query`` (needs measure count/sum+count)."""
        if self.measure == "sum":
            raise InvalidQueryError('box_count requires measure="count" or "sum+count"')
        result = self._aggregate(query)
        if isinstance(result, SumCount):
            return result.count
        return float(result)

    def box_avg(self, query: Box) -> float:
        """AVG of weights of objects intersecting ``query`` (measure sum+count)."""
        if self.measure != "sum+count":
            raise InvalidQueryError('box_avg requires measure="sum+count"')
        result = self._aggregate(query)
        assert isinstance(result, SumCount)
        return result.average()

    def _aggregate(self, query: Box) -> Value:
        self._check(query)
        tracer = _trace._ACTIVE
        if tracer is None:
            return self._aggregate_impl(query)
        with tracer.span("box_sum", backend=self.backend, dims=self.dims):
            return self._aggregate_impl(query)

    def _aggregate_impl(self, query: Box) -> Value:
        if self._object_index is not None:
            return self._object_index.box_sum(query)
        if isinstance(self._reduction, CornerReduction):
            return self._reduction.box_sum(self._indices, query, zero=self._zero)
        return self._reduction.box_sum(self._indices, self._total, query, zero=self._zero)

    def total(self) -> Value:
        """Aggregate over every stored object."""
        if self._object_index is not None:
            return self._object_index.total()
        return self._total

    # -- probe planning (the repro.service seam) ---------------------------------------

    @property
    def supports_probes(self) -> bool:
        """True when box-sums decompose into shareable dominance-sum probes.

        Object backends (``ar``/``rstar``) answer queries monolithically and
        return False; the :mod:`repro.service` batch planner then falls back
        to per-query execution (result caching still applies).
        """
        return self._object_index is None

    @property
    def zero(self) -> Value:
        """The additive identity of this index's value domain.

        ``0.0`` for scalar measures, a zero :class:`~repro.core.values.SumCount`
        for ``measure="sum+count"`` — the seed a router uses when merging
        probe values across disjoint shards.
        """
        return self._zero

    @property
    def probe_base(self) -> Value:
        """The base value seeding probe reassembly (Lemma 1 vs Theorem 1).

        The corner reduction starts inclusion–exclusion from ``zero``; EO82
        starts from the grand total and subtracts avoidance terms.  Because
        dominance sums — and the grand total — are additive over disjoint
        object partitions, a sharded deployment reassembles the exact answer
        from ``sum(shard.probe_base)`` plus the per-probe sums.
        """
        if self._object_index is not None:
            raise NotSupportedError("object backends do not expose a probe base")
        if isinstance(self._reduction, CornerReduction):
            return self._zero
        return self._total

    def probe_plan(self, query: Box) -> List[Probe]:
        """The query's constituent dominance-sum probes, in evaluation order.

        Every box-sum is exactly this plan combined by inclusion–exclusion
        (Lemma 1); probes with equal :attr:`~repro.core.reduction.Probe.identity`
        may be shared across a batch of queries.
        """
        if self._object_index is not None:
            raise NotSupportedError("object backends do not expose a probe plan")
        self._check(query)
        return self._reduction.probes(query)

    def probe_value(self, key: object, point: Tuple[float, ...]) -> Value:
        """Execute one dominance-sum probe against a constituent index."""
        if self._object_index is not None:
            raise NotSupportedError("object backends do not expose probes")
        index = self._indices[key]
        tracer = _trace._ACTIVE
        if tracer is None:
            return index.dominance_sum(point)
        with tracer.span("dominance_sum", key=format_key(key)):
            return index.dominance_sum(point)

    def box_sum_from_probes(self, plan: List[Probe], values: ProbeValues) -> float:
        """Reassemble :meth:`box_sum` from externally resolved probe values.

        Bit-identical to :meth:`box_sum` on the same index state: probes are
        pure functions of the state and the accumulation order matches the
        direct path.
        """
        if self._object_index is not None:
            raise NotSupportedError("object backends do not expose probes")
        result = combine_probe_values(plan, values, self.probe_base, self._zero)
        if isinstance(result, SumCount):
            return result.total
        return float(result)

    # -- introspection ----------------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Footprint of the index on the simulated disk."""
        if self.storage is None:
            return 0
        return self.storage.size_bytes

    def _check(self, box: Box) -> None:
        if box.dims != self.dims:
            raise DimensionMismatchError(f"box dims {box.dims} != index dims {self.dims}")


class FunctionalBoxSumIndex:
    """The functional box-sum problem over polynomial value functions.

    A single polynomial-valued dominance-sum index receives ``2^d`` corner
    tuples per inserted object (Theorem 3); queries evaluate the OIFBS
    inclusion–exclusion of Figure 4.  ``max_degree`` bounds the value
    functions' total degree; the stored tuples then have degree at most
    ``max_degree + d``, which sizes the index records.

    The ``ar`` backend indexes the objects (box + coefficient tuple)
    directly in a functional aR-tree for head-to-head comparison.
    """

    def __init__(
        self,
        dims: int,
        backend: str = "ba",
        max_degree: int = 2,
        storage: Optional[StorageContext] = None,
        page_size: int = 8192,
        buffer_pages: Optional[int] = 1280,
        **backend_kwargs: object,
    ) -> None:
        if dims < 1:
            raise DimensionMismatchError(f"dims must be >= 1, got {dims}")
        if max_degree < 0:
            raise InvalidQueryError(f"max_degree must be >= 0, got {max_degree}")
        self.dims = dims
        self.backend = backend
        self.max_degree = max_degree
        self.num_objects = 0
        self._reduction = FunctionalReduction(dims)
        tuple_bytes = polynomial_value_bytes(dims, max_degree + dims)
        if backend == "ar":
            self.storage = storage or StorageContext(page_size=page_size, buffer_pages=buffer_pages)
            from ..rtree import FunctionalARTree

            self._object_index = FunctionalARTree(
                self.storage, dims, function_bytes=tuple_bytes, **backend_kwargs
            )
            self._index = None
            return
        if backend not in DOMINANCE_BACKENDS:
            raise NotSupportedError(f"unknown backend {backend!r}")
        self._object_index = None
        needs_storage = backend not in ("naive", "ecdf", "ecdf-log")
        if needs_storage:
            self.storage = storage or StorageContext(page_size=page_size, buffer_pages=buffer_pages)
        else:
            self.storage = storage
        self._index = make_dominance_index(
            backend,
            dims,
            storage=self.storage,
            zero=Polynomial(dims),
            value_bytes=tuple_bytes,
            **backend_kwargs,
        )

    def _coerce(self, function: Polynomial | float) -> Polynomial:
        if isinstance(function, (int, float)):
            function = Polynomial.constant(self.dims, float(function))
        if function.dims != self.dims:
            raise DimensionMismatchError(
                f"value function arity {function.dims} != index dims {self.dims}"
            )
        if function.degree() > self.max_degree:
            raise InvalidQueryError(
                f"value function degree {function.degree()} exceeds the index's "
                f"max_degree {self.max_degree}"
            )
        return function

    def insert(self, box: Box, function: Polynomial | float) -> None:
        """Add an object with a polynomial (or constant) value function."""
        if box.dims != self.dims:
            raise DimensionMismatchError(f"box dims {box.dims} != index dims {self.dims}")
        function = self._coerce(function)
        self.num_objects += 1
        if self._object_index is not None:
            self._object_index.insert(box, function)
            return
        for point, tup in self._reduction.corner_tuples(box, function):
            self._index.insert(point, tup)

    def delete(self, box: Box, function: Polynomial | float) -> None:
        """Remove a previously inserted object (insert the negated function)."""
        function = self._coerce(function)
        self.num_objects -= 2  # insert() below will add one back
        self.insert(box, -function)

    def bulk_load(self, objects: Iterable[Tuple[Box, Polynomial | float]]) -> None:
        """Build from scratch out of ``(box, value function)`` pairs."""
        objects = list(objects)
        self.num_objects = len(objects)
        if self._object_index is not None:
            self._object_index.bulk_load([(box, self._coerce(f)) for box, f in objects])
            return
        items: List[Tuple[Sequence[float], Polynomial]] = []
        for box, function in objects:
            if box.dims != self.dims:
                raise DimensionMismatchError(f"box dims {box.dims} != index dims {self.dims}")
            items.extend(self._reduction.corner_tuples(box, self._coerce(function)))
        self._index.bulk_load(items)

    def functional_box_sum(self, query: Box) -> float:
        """``Σ_objects ∫ f over (object ∩ query)``."""
        if query.dims != self.dims:
            raise DimensionMismatchError(f"box dims {query.dims} != index dims {self.dims}")
        tracer = _trace._ACTIVE
        if tracer is None:
            return self._functional_impl(query)
        with tracer.span("functional_box_sum", backend=self.backend, dims=self.dims):
            return self._functional_impl(query)

    def _functional_impl(self, query: Box) -> float:
        if self._object_index is not None:
            return self._object_index.functional_box_sum(query)
        return self._reduction.functional_box_sum(self._index, query)

    def oifbs(self, point: Sequence[float]) -> float:
        """Origin-involved functional box-sum at a single point."""
        if self._object_index is not None:
            raise NotSupportedError("OIFBS queries need a dominance backend")
        return self._reduction.oifbs(self._index, tuple(float(c) for c in point))

    @property
    def size_bytes(self) -> int:
        """Footprint of the index on the simulated disk."""
        if self.storage is None:
            return 0
        return self.storage.size_bytes
