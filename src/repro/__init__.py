"""repro — efficient aggregation over objects with extent.

A complete, disk-cost-faithful Python implementation of the index family
from *"Efficient Aggregation over Objects with Extent"* (Zhang, Tsotras,
Gunopulos; PODS 2002):

* the **BA-tree** — the paper's primary contribution, a k-d-B-tree whose
  index records carry a subtotal and ``d`` lower-dimensional borders;
* the **ECDF-Bu-tree** and **ECDF-Bq-tree** — disk-based, dynamic
  externalizations of Bentley's ECDF-tree;
* the **aR-tree** (aggregate R*-tree) and plain **R*-tree** comparison
  baselines;
* the reduction of simple box-sum queries to ``2^d`` dominance-sums
  (Theorem 2) and of functional box-sums over polynomial value functions
  to ``2^d`` dominance-sums over coefficient tuples (Theorem 3).

Quickstart::

    from repro import Box, BoxSumIndex

    index = BoxSumIndex(dims=2, backend="ba")
    index.insert(Box((2, 10), (15, 26)), value=4.0)
    index.insert(Box((5, 3), (18, 15)), value=3.0)
    total = index.box_sum(Box((5, 7), (20, 15)))   # -> 7.0

See :mod:`repro.core.aggregator` for the full facade API and DESIGN.md for
the architecture and experiment map.
"""

from .approx import (
    ApproxPolicy,
    ApproxResult,
    ApproxSynopsis,
    ApproxTier,
    build_synopsis,
)
from .core import (
    BoundedValue,
    Box,
    NaiveBoxSum,
    NaiveDominanceSum,
    NaiveFunctionalBoxSum,
    Polynomial,
    ReproError,
    SumCount,
)
from .core.aggregator import (
    BoxSumIndex,
    FunctionalBoxSumIndex,
    make_dominance_index,
)
from .core.errors import (
    ReplicaDivergedError,
    ReplicationLogError,
    ShardUnavailableError,
)
from .core.explain import QueryProfile, profile
from .heal import (
    ComponentHealth,
    HealPolicy,
    HealReport,
    HealSupervisor,
)
from .obs import MetricsRegistry, Tracer, get_registry, tracing
from .replog import (
    CatchUpDaemon,
    Checkpoint,
    LogicalState,
    ReplicationLog,
    RestoreReport,
)
from .resilience import (
    BreakerConfig,
    ChaosPlan,
    CircuitBreaker,
    FailoverRouter,
    FaultyQueryService,
    PartialResult,
    ReplicaGroup,
    ResilienceConfig,
)
from .service import (
    BatchResult,
    QueryService,
    ServiceClosedError,
    ServiceOverloadedError,
)
from .shard import ShardedService, ShardMap, ShardRouter
from .storage import CostModel, IOCounter, StorageContext

__version__ = "1.0.0"

__all__ = [
    "Box",
    "Polynomial",
    "SumCount",
    "ReproError",
    "BoxSumIndex",
    "FunctionalBoxSumIndex",
    "make_dominance_index",
    "NaiveBoxSum",
    "NaiveDominanceSum",
    "NaiveFunctionalBoxSum",
    "StorageContext",
    "IOCounter",
    "CostModel",
    "MetricsRegistry",
    "Tracer",
    "get_registry",
    "tracing",
    "profile",
    "QueryProfile",
    "QueryService",
    "BatchResult",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "ShardedService",
    "ShardMap",
    "ShardRouter",
    "BreakerConfig",
    "ChaosPlan",
    "CircuitBreaker",
    "FailoverRouter",
    "FaultyQueryService",
    "PartialResult",
    "ReplicaGroup",
    "ResilienceConfig",
    "ShardUnavailableError",
    "ReplicationLog",
    "RestoreReport",
    "Checkpoint",
    "LogicalState",
    "CatchUpDaemon",
    "ReplicationLogError",
    "ReplicaDivergedError",
    "HealPolicy",
    "HealSupervisor",
    "HealReport",
    "ComponentHealth",
    "BoundedValue",
    "ApproxPolicy",
    "ApproxResult",
    "ApproxSynopsis",
    "ApproxTier",
    "build_synopsis",
    "__version__",
]
