"""The k-d-B-tree (Robinson, SIGMOD 1981): a disk-based point partition.

"As in the k-d-B-tree, each index record is associated with a box and a
child pointer.  The boxes of records in a node do not intersect and their
union creates the box of the node." (paper Section 5).  This module
implements the plain point-storing k-d-B-tree — the substrate the BA-tree
augments — including the structure's signature *forced splits*: when an
index page is cut by a plane, children straddling the plane are split
recursively all the way down.

Supported queries are range reporting and range counting over half-open
boxes; the BA-tree in :mod:`repro.batree` reuses the split-plane policies
from :mod:`repro.kdb.split` and adds the aggregation machinery.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import DimensionMismatchError, TreeInvariantError
from ..core.geometry import Box, Coords, as_coords
from ..obs import trace as _trace
from ..storage import StorageContext
from .split import choose_index_split_plane, choose_leaf_split_plane

_Entry = Tuple[Coords, Any]


class _LeafPage:
    __slots__ = ("pid", "entries")

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.entries: List[_Entry] = []

    @property
    def is_leaf(self) -> bool:
        return True


class _Record:
    """An index record: a box and the child page covering exactly that box."""

    __slots__ = ("box", "child")

    def __init__(self, box: Box, child: int) -> None:
        self.box = box
        self.child = child


class _IndexPage:
    __slots__ = ("pid", "records")

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.records: List[_Record] = []

    @property
    def is_leaf(self) -> bool:
        return False


class KdbTree:
    """Point-storing k-d-B-tree over a shared storage context."""

    def __init__(
        self,
        storage: StorageContext,
        dims: int,
        leaf_capacity: Optional[int] = None,
        index_capacity: Optional[int] = None,
    ) -> None:
        if dims < 1:
            raise DimensionMismatchError(f"dims must be >= 1, got {dims}")
        self.storage = storage
        self.dims = dims
        self.leaf_capacity = leaf_capacity or storage.layout.point_leaf_capacity(dims)
        self.index_capacity = index_capacity or storage.layout.kdb_index_capacity(dims)
        if self.leaf_capacity < 2:
            raise ValueError(f"leaf_capacity must be >= 2, got {self.leaf_capacity}")
        if self.index_capacity < 2:
            raise ValueError(f"index_capacity must be >= 2, got {self.index_capacity}")
        self.universe = Box((float("-inf"),) * dims, (float("inf"),) * dims)
        root = _LeafPage(storage.pager.allocate())
        storage.pager.put(root.pid, root)
        self.root_pid = root.pid
        self.num_points = 0

    # -- page helpers -------------------------------------------------------------

    def _fetch(self, pid: int, write: bool = False):
        self.storage.buffer.access(pid, write=write)
        return self.storage.pager.get(pid)

    def _new_leaf(self) -> _LeafPage:
        page = _LeafPage(self.storage.pager.allocate())
        self.storage.pager.put(page.pid, page)
        return page

    def _new_index(self) -> _IndexPage:
        page = _IndexPage(self.storage.pager.allocate())
        self.storage.pager.put(page.pid, page)
        return page

    # -- insertion ------------------------------------------------------------------

    def insert(self, point: Sequence[float], payload: Any = None) -> None:
        """Insert a point with an arbitrary payload."""
        coords = as_coords(point)
        if len(coords) != self.dims:
            raise DimensionMismatchError(f"point arity {len(coords)} != tree dims {self.dims}")
        self.num_points += 1
        split = self._insert_into(self.root_pid, self.universe, coords, payload, 0)
        if split is not None:
            left, right = split
            new_root = self._new_index()
            new_root.records = [left, right]
            self.storage.buffer.access(new_root.pid, write=True)
            self.root_pid = new_root.pid

    def _insert_into(
        self, pid: int, box: Box, coords: Coords, payload: Any, depth: int
    ) -> Optional[Tuple[_Record, _Record]]:
        """Insert into the subtree rooted at ``pid`` (which covers ``box``).

        Returns two replacement records when the page had to split.
        """
        page = self._fetch(pid, write=True)
        if page.is_leaf:
            page.entries.append((coords, payload))
            if len(page.entries) <= self.leaf_capacity:
                return None
            return self._split_page(pid, box, depth, forced_plane=None)
        target = None
        for record in page.records:
            if record.box.contains_point(coords):
                target = record
                break
        if target is None:  # pragma: no cover - boxes partition the space
            raise TreeInvariantError(f"index page {pid} has no record for {coords}")
        split = self._insert_into(target.child, target.box, coords, payload, depth + 1)
        if split is None:
            return None
        idx = page.records.index(target)
        page.records[idx : idx + 1] = list(split)
        if len(page.records) <= self.index_capacity:
            return None
        return self._split_page(pid, box, depth, forced_plane=None)

    # -- splitting ----------------------------------------------------------------------

    def _split_page(
        self,
        pid: int,
        box: Box,
        depth: int,
        forced_plane: Optional[Tuple[int, float]],
    ) -> Optional[Tuple[_Record, _Record]]:
        """Split page ``pid`` (covering ``box``) into two sibling records.

        ``forced_plane`` is set when the split is *forced* by a parent split
        plane cutting through this page; otherwise the plane is chosen
        locally.  Returns None only for an unsplittable leaf (all points
        identical), which is tolerated as an oversized page.
        """
        page = self._fetch(pid, write=True)
        if page.is_leaf:
            plane = forced_plane or choose_leaf_split_plane(
                [coords for coords, _payload in page.entries], self.dims, depth, box
            )
            if plane is None:
                return None
            dim, value = plane
            lower_box, upper_box = box.split_at(dim, value)
            upper = self._new_leaf()
            upper.entries = [e for e in page.entries if e[0][dim] >= value]
            page.entries = [e for e in page.entries if e[0][dim] < value]
            self.storage.buffer.access(upper.pid, write=True)
            return _Record(lower_box, pid), _Record(upper_box, upper.pid)
        plane = forced_plane or choose_index_split_plane(
            [r.box for r in page.records], self.dims, depth, box
        )
        dim, value = plane
        lower_box, upper_box = box.split_at(dim, value)
        lower_records: List[_Record] = []
        upper_records: List[_Record] = []
        for record in page.records:
            if record.box.high[dim] <= value:
                lower_records.append(record)
            elif record.box.low[dim] >= value:
                upper_records.append(record)
            else:
                forced = self._split_page(
                    record.child, record.box, depth + 1, forced_plane=(dim, value)
                )
                if forced is None:  # pragma: no cover - leaves of identical points
                    raise TreeInvariantError("forced split failed on a degenerate leaf")
                left, right = forced
                lower_records.append(left)
                upper_records.append(right)
        upper_page = self._new_index()
        upper_page.records = upper_records
        page.records = lower_records
        self.storage.buffer.access(upper_page.pid, write=True)
        return _Record(lower_box, pid), _Record(upper_box, upper_page.pid)

    # -- queries -------------------------------------------------------------------------

    def range_report(self, query: Box) -> Iterator[_Entry]:
        """Yield every ``(point, payload)`` whose point lies in the half-open query box."""
        if query.dims != self.dims:
            raise DimensionMismatchError(f"query dims {query.dims} != tree dims {self.dims}")
        yield from self._report(self.root_pid, query)

    def _report(self, pid: int, query: Box) -> Iterator[_Entry]:
        page = self._fetch(pid)
        tracer = _trace._ACTIVE
        if tracer is not None:
            tracer.event("node", pid=pid, leaf=page.is_leaf)
        if page.is_leaf:
            for coords, payload in page.entries:
                if query.contains_point(coords):
                    yield coords, payload
            return
        for record in page.records:
            if record.box.intersects(query):
                yield from self._report(record.child, query)

    def range_count(self, query: Box) -> int:
        """Number of stored points inside the half-open query box."""
        tracer = _trace._ACTIVE
        if tracer is None:
            return sum(1 for _ in self.range_report(query))
        with tracer.span("kdb.range_count", dims=self.dims):
            return sum(1 for _ in self.range_report(query))

    def __len__(self) -> int:
        return self.num_points

    # -- invariants ----------------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify disjointness, coverage and point placement; raises on violation."""
        count = self._check_page(self.root_pid, self.universe)
        if count != self.num_points:
            raise TreeInvariantError(f"point count mismatch: {count} != {self.num_points}")

    def _check_page(self, pid: int, box: Box) -> int:
        page = self.storage.pager.get(pid)
        if page.is_leaf:
            for coords, _payload in page.entries:
                if not box.contains_point(coords):
                    raise TreeInvariantError(f"leaf {pid} point {coords} outside {box}")
            return len(page.entries)
        if not page.records:
            raise TreeInvariantError(f"index page {pid} is empty")
        for i, a in enumerate(page.records):
            if not box.contains_box(a.box):
                raise TreeInvariantError(f"record box {a.box} escapes page box {box}")
            for b in page.records[i + 1 :]:
                inter = a.box.intersection(b.box)
                if inter is not None and inter.volume() > 0:
                    raise TreeInvariantError(f"records overlap in page {pid}: {a.box} and {b.box}")
        volume = sum(r.box.volume() for r in page.records)
        if all(
            abs(c) != float("inf") for c in (*box.low, *box.high)
        ) and volume < box.volume() - 1e-9:
            raise TreeInvariantError(f"records do not cover page box {box}")
        return sum(self._check_page(r.child, r.box) for r in page.records)
