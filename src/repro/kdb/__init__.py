"""k-d-B-tree (Robinson 1981): the page-partitioning skeleton of the BA-tree."""

from .kdbtree import KdbTree
from .split import choose_index_split_plane, choose_leaf_split_plane

__all__ = ["KdbTree", "choose_leaf_split_plane", "choose_index_split_plane"]
