"""Split-plane selection shared by the k-d-B-tree and the BA-tree.

The BA-tree "partitions the index page by alternating directions" (paper
Section 5) — that alternation is what makes any axis-parallel line cut only
about sqrt(B) of a node's records, the property behind its update
advantage over the ECDF-Bq-tree.  Leaf splits therefore prefer the
dimension given by the node's depth, falling back to other dimensions when
the preferred one is degenerate (all points share that coordinate).

Index-page splits must pick a plane inside the page's box; planes aligned
with existing record boundaries minimize forced downward splits, so the
candidates are the records' low edges.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.geometry import Box, Coords


def choose_leaf_split_plane(
    points: Sequence[Coords], dims: int, depth: int, box: Box
) -> Optional[Tuple[int, float]]:
    """Pick ``(dim, value)`` splitting a leaf's points into two non-empty halves.

    Tries the alternating dimension ``depth % dims`` first, then the rest.
    The value is the median coordinate, adjusted off runs of equal values so
    both sides are non-empty and stays strictly inside ``box``.  Returns
    None when every dimension is degenerate (all points identical in every
    coordinate — the leaf is unsplittable).
    """
    order = [(depth + i) % dims for i in range(dims)]
    for dim in order:
        values = sorted(p[dim] for p in points)
        value = _median_off_run(values)
        if value is not None and box.low[dim] < value < box.high[dim]:
            return dim, value
    return None


def _median_off_run(values: List[float]) -> Optional[float]:
    """The value closest to the median that has at least one value below it."""
    n = len(values)
    mid = n // 2
    candidate = values[mid]
    if candidate > values[0]:
        return candidate
    # The median sits in a run touching the minimum; use the first larger value.
    for v in values[mid:]:
        if v > candidate:
            return v
    return None


def choose_index_split_plane(
    boxes: Sequence[Box], dims: int, depth: int, box: Box
) -> Tuple[int, float]:
    """Pick ``(dim, value)`` splitting an index page's records.

    Candidates are the records' low edges strictly inside the page box
    (planes through record boundaries never force-split the records whose
    edge they follow).  The alternating dimension is preferred; the value
    closest to the median boundary wins.  At least one dimension always has
    a candidate for two or more disjoint records.
    """
    order = [(depth + i) % dims for i in range(dims)]
    for dim in order:
        candidates = sorted(
            {b.low[dim] for b in boxes if box.low[dim] < b.low[dim] < box.high[dim]}
        )
        if candidates:
            return dim, candidates[len(candidates) // 2]
    raise AssertionError("no split plane exists; records cannot be disjoint")  # pragma: no cover
