"""Serializable traffic profiles: who asks what, how fast, in which phases.

A :class:`TrafficProfile` is the declarative half of the load generator —
a seed, a tenant population, an operation mix and a list of
:class:`Phase` entries (warmup → steady → burst → diurnal ramp is the
canonical shape).  Everything the driver does is a pure function of the
profile plus the initial dataset, which is what makes two runs with the
same profile produce the *same operation stream* (the determinism the CI
gate and the replay tests rely on).

Profiles round-trip through :meth:`TrafficProfile.to_dict` /
:meth:`TrafficProfile.from_dict`, so a production incident's traffic shape
can be committed next to the benchmark that reproduces it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Tuple

from ..core.errors import InvalidQueryError

#: Operation classes the driver knows how to fire.
OP_CLASSES: Tuple[str, ...] = ("point", "batch", "insert", "delete")

#: Version of the serialized profile format.
PROFILE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class OpMix:
    """Relative weights of the four operation classes (need not sum to 1).

    ``point`` is a single box-sum, ``batch`` a multi-query scatter (the
    corner-sharing planner's food), ``insert``/``delete`` are single-object
    mutations routed through the cluster ledger.
    """

    point: float = 0.70
    batch: float = 0.10
    insert: float = 0.15
    delete: float = 0.05

    def __post_init__(self) -> None:
        weights = self.as_tuple()
        if any(w < 0 for w in weights):
            raise InvalidQueryError(f"op-mix weights must be >= 0, got {weights}")
        if sum(weights) <= 0:
            raise InvalidQueryError("op-mix weights must not all be zero")

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.point, self.batch, self.insert, self.delete)

    def to_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in OP_CLASSES}

    @classmethod
    def from_dict(cls, doc: Dict[str, float]) -> "OpMix":
        return cls(**{name: float(doc.get(name, 0.0)) for name in OP_CLASSES})


@dataclass(frozen=True)
class Phase:
    """One segment of the schedule: a name, a duration and an arrival rate.

    Arrivals within the phase are an **open-loop Poisson process** at
    ``rate`` ops/s; when ``rate_end`` differs from ``rate`` the intensity
    glides linearly across the phase (the diurnal-ramp shape), realized by
    thinning a homogeneous process at the peak rate — still one seeded RNG,
    still deterministic.  ``mix=None`` inherits the profile-level mix, so a
    burst phase can, e.g., go read-only without redeclaring everything.
    """

    name: str
    duration_s: float
    rate: float
    rate_end: float | None = None
    mix: OpMix | None = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise InvalidQueryError(f"phase {self.name!r}: duration must be > 0")
        if self.rate <= 0 or (self.rate_end is not None and self.rate_end <= 0):
            raise InvalidQueryError(f"phase {self.name!r}: rates must be > 0")

    @property
    def peak_rate(self) -> float:
        return max(self.rate, self.rate_end if self.rate_end is not None else self.rate)

    def rate_at(self, offset_s: float) -> float:
        """Instantaneous arrival rate ``offset_s`` seconds into the phase."""
        if self.rate_end is None or self.duration_s <= 0:
            return self.rate
        frac = min(max(offset_s / self.duration_s, 0.0), 1.0)
        return self.rate + (self.rate_end - self.rate) * frac

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration_s,
            "rate": self.rate,
        }
        if self.rate_end is not None:
            doc["rate_end"] = self.rate_end
        if self.mix is not None:
            doc["mix"] = self.mix.to_dict()
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Phase":
        return cls(
            name=str(doc["name"]),
            duration_s=float(doc["duration_s"]),
            rate=float(doc["rate"]),
            rate_end=float(doc["rate_end"]) if doc.get("rate_end") is not None else None,
            mix=OpMix.from_dict(doc["mix"]) if doc.get("mix") is not None else None,
        )


def _default_phases() -> Tuple[Phase, ...]:
    return (
        Phase("warmup", duration_s=1.0, rate=80.0),
        Phase("steady", duration_s=3.0, rate=120.0),
        Phase("burst", duration_s=0.5, rate=600.0),
        Phase("ramp", duration_s=2.0, rate=120.0, rate_end=320.0),
    )


@dataclass(frozen=True)
class TrafficProfile:
    """Everything that shapes the generated operation stream.

    Parameters
    ----------
    dims:
        Dimensionality of the served space.
    seed:
        Base RNG seed; the whole stream (arrival times, op classes, tenant
        draws, box contents, check sampling) derives from it.
    phases:
        The schedule segments, played back to back.
    mix:
        Profile-level operation mix (phases may override).
    tenants:
        Number of distinct tenants.  Tenant popularity is Zipf-ranked with
        exponent ``tenant_zipf_s`` — a few tenants dominate, the tail is
        long, exactly the skew a multi-tenant service sees.
    pool_size / query_zipf_s / qbs_fraction:
        Each tenant owns a pool of ``pool_size`` distinct hot query boxes
        (reusing :func:`repro.workloads.hot_query_boxes`); draws within the
        pool are Zipf-ranked with ``query_zipf_s``.  ``qbs_fraction`` is the
        query-box volume fraction (the paper's QBS knob).
    hotspot / hotspot_fraction:
        A fraction of tenants is *spatially* confined to a hotspot
        sub-region (:func:`repro.workloads.hotspot_boxes`), concentrating
        load on few shards — the skew that makes extent pruning and
        rebalancing earn their keep.
    batch_size:
        Queries per ``batch`` operation.
    check_fraction:
        Deterministic subsample of query operations marked for naive
        cross-checking (the "zero wrong answers" guarantee is spot-checked
        on these, and re-verified in bulk after the run drains).
    """

    dims: int = 2
    seed: int = 7
    phases: Tuple[Phase, ...] = field(default_factory=_default_phases)
    mix: OpMix = field(default_factory=OpMix)
    tenants: int = 8
    tenant_zipf_s: float = 1.1
    pool_size: int = 12
    query_zipf_s: float = 1.1
    qbs_fraction: float = 0.01
    hotspot: float = 0.25
    hotspot_fraction: float = 0.25
    batch_size: int = 8
    check_fraction: float = 0.10

    def __post_init__(self) -> None:
        if not self.phases:
            raise InvalidQueryError("profile needs at least one phase")
        names = [phase.name for phase in self.phases]
        if len(set(names)) != len(names):
            raise InvalidQueryError(f"phase names must be unique, got {names}")
        if self.tenants < 1:
            raise InvalidQueryError(f"tenants must be >= 1, got {self.tenants}")
        if self.pool_size < 1:
            raise InvalidQueryError(f"pool_size must be >= 1, got {self.pool_size}")
        if self.batch_size < 1:
            raise InvalidQueryError(f"batch_size must be >= 1, got {self.batch_size}")
        if not 0.0 <= self.check_fraction <= 1.0:
            raise InvalidQueryError(f"check_fraction must be in [0, 1], got {self.check_fraction}")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise InvalidQueryError(
                f"hotspot_fraction must be in [0, 1], got {self.hotspot_fraction}"
            )

    @property
    def total_duration_s(self) -> float:
        return sum(phase.duration_s for phase in self.phases)

    def mix_for(self, phase: Phase) -> OpMix:
        return phase.mix if phase.mix is not None else self.mix

    def scaled(self, **overrides: object) -> "TrafficProfile":
        """A copy with some knobs replaced (mirrors ``BenchConfig.scaled``)."""
        return replace(self, **overrides)

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "dims": self.dims,
            "seed": self.seed,
            "phases": [phase.to_dict() for phase in self.phases],
            "mix": self.mix.to_dict(),
            "tenants": self.tenants,
            "tenant_zipf_s": self.tenant_zipf_s,
            "pool_size": self.pool_size,
            "query_zipf_s": self.query_zipf_s,
            "qbs_fraction": self.qbs_fraction,
            "hotspot": self.hotspot,
            "hotspot_fraction": self.hotspot_fraction,
            "batch_size": self.batch_size,
            "check_fraction": self.check_fraction,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TrafficProfile":
        version = doc.get("schema_version", PROFILE_SCHEMA_VERSION)
        if version != PROFILE_SCHEMA_VERSION:
            raise InvalidQueryError(f"unsupported profile schema v{version}")
        return cls(
            dims=int(doc.get("dims", 2)),
            seed=int(doc.get("seed", 7)),
            phases=tuple(Phase.from_dict(p) for p in doc["phases"]),
            mix=OpMix.from_dict(doc.get("mix", OpMix().to_dict())),
            tenants=int(doc.get("tenants", 8)),
            tenant_zipf_s=float(doc.get("tenant_zipf_s", 1.1)),
            pool_size=int(doc.get("pool_size", 12)),
            query_zipf_s=float(doc.get("query_zipf_s", 1.1)),
            qbs_fraction=float(doc.get("qbs_fraction", 0.01)),
            hotspot=float(doc.get("hotspot", 0.25)),
            hotspot_fraction=float(doc.get("hotspot_fraction", 0.25)),
            batch_size=int(doc.get("batch_size", 8)),
            check_fraction=float(doc.get("check_fraction", 0.10)),
        )


def smoke_profile(seed: int = 7) -> TrafficProfile:
    """The reduced-scale profile behind the smoke gate's traffic metrics.

    Small enough to run in a couple of seconds, but it still exercises all
    four phase shapes and all four op classes; the burst phase offers far
    more load than the smoke cluster's admission capacity, so the
    deterministic shed count it produces is structurally nonzero.
    """
    return TrafficProfile(
        seed=seed,
        phases=(
            Phase("warmup", duration_s=0.5, rate=60.0),
            Phase("steady", duration_s=1.5, rate=150.0),
            Phase("burst", duration_s=0.3, rate=1500.0),
            Phase("ramp", duration_s=0.7, rate=100.0, rate_end=400.0),
        ),
        tenants=6,
        pool_size=8,
        batch_size=6,
        check_fraction=0.15,
    )


__all__ = [
    "OP_CLASSES",
    "PROFILE_SCHEMA_VERSION",
    "OpMix",
    "Phase",
    "TrafficProfile",
    "smoke_profile",
]
