"""SLO-grade load generation against the sharded service (ROADMAP item 5).

Three layers, declarative to imperative:

* :mod:`repro.loadgen.profile` — :class:`TrafficProfile`: serializable
  description of a workload (phases with Poisson rates and ramps, op mix,
  Zipf tenant/query skew, hotspot tenants, check sampling);
* :mod:`repro.loadgen.schedule` — :func:`build_schedule`: the profile
  expanded into a deterministic, pre-timed open-loop operation stream;
* :mod:`repro.loadgen.driver` / :mod:`repro.loadgen.collector` —
  :class:`LoadGenerator` fires the stream at a cluster (wall clock for
  honest latencies, virtual time for the bit-stable CI gate) while
  :class:`TrafficCollector` rolls outcomes into an :class:`SLOReport`.

Quickstart::

    from repro.loadgen import LoadGenerator, smoke_profile

    gen = LoadGenerator(cluster, smoke_profile(), initial_objects=objs)
    report = gen.run(mode="virtual")   # deterministic; mode="wall" for real time
    print(report.render())
"""

from .collector import (
    LATENCY_BUCKETS_MS,
    PERCENTILES,
    SLO_REPORT_SCHEMA_VERSION,
    SLOReport,
    TrafficCollector,
)
from .driver import LoadGenerator
from .profile import (
    OP_CLASSES,
    PROFILE_SCHEMA_VERSION,
    OpMix,
    Phase,
    TrafficProfile,
    smoke_profile,
)
from .schedule import ScheduledOp, ZipfSampler, build_schedule, op_counts

__all__ = [
    "LATENCY_BUCKETS_MS",
    "OP_CLASSES",
    "PERCENTILES",
    "PROFILE_SCHEMA_VERSION",
    "SLO_REPORT_SCHEMA_VERSION",
    "LoadGenerator",
    "OpMix",
    "Phase",
    "SLOReport",
    "ScheduledOp",
    "TrafficCollector",
    "TrafficProfile",
    "ZipfSampler",
    "build_schedule",
    "op_counts",
    "smoke_profile",
]
