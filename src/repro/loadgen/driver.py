"""The load generator: fire a schedule at a cluster, measure like an SRE.

:class:`LoadGenerator` executes a pre-built deterministic schedule (see
:mod:`repro.loadgen.schedule`) against a :class:`~repro.shard.ShardedService`
in one of two modes:

**Wall mode** (``run(mode="wall")``) is the honest production rehearsal: a
dispatcher releases each operation at its scheduled arrival instant into a
worker pool and the recorded latency is *completion minus scheduled
arrival* — queueing delay (in the pool, at the admission gate, behind the
writer lock) is charged to the request, never silently dropped, which is
the whole point of open-loop load generation.  Sheds are real
:class:`~repro.core.errors.ServiceOverloadedError` rejections from the
cluster's admission gate.

**Virtual mode** (``run(mode="virtual")``) is the deterministic twin the
CI gate runs: operations execute sequentially (so cache epochs, probe
counts and chaos draws replay bit-identically), while arrival-vs-capacity
dynamics are simulated in virtual time with an M-server/K-queue model
taken from the cluster's own admission gate.  Each operation's virtual
service time is priced from *measured deterministic work* — probes
executed, probe-cache hits, pages touched — so a serving-path regression
(lost dedup, cache thrash, extra page I/O) shows up as a higher virtual
p99 exactly as it would show up in wall-clock p99, but without the CI
timing noise.  Sheds fall out of the same queue model: arrivals that find
``max_inflight`` virtual servers busy and ``max_queue`` arrivals already
waiting are shed, deterministically.

In both modes every applied mutation is mirrored into a signed
:class:`~repro.core.naive.NaiveBoxSum` oracle and a scheduled sample of
query answers is cross-checked against it — virtual mode checks inline
(sequential execution makes the oracle exact at every step), wall mode
verifies the distinct check boxes after the run drains.  A load test that
can't vouch for its answers is just a space heater.
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..approx.bounds import ApproxResult
from ..core.errors import ServiceOverloadedError
from ..core.geometry import Box
from ..core.naive import NaiveBoxSum
from ..obs.registry import MetricsRegistry
from ..resilience.partial import PartialResult
from .collector import SLOReport, TrafficCollector
from .profile import TrafficProfile
from .schedule import ScheduledOp, build_schedule, op_counts

#: Virtual-time cost model (milliseconds).  Absolute values are arbitrary;
#: what matters is that they price *deterministic work units* so the
#: simulated latencies move with real serving-path cost.
VIRTUAL_OP_COST_MS = 1.0
VIRTUAL_PROBE_COST_MS = 0.05
VIRTUAL_HIT_COST_MS = 0.005
VIRTUAL_PAGE_COST_MS = 0.02

#: Cap on distinct boxes re-verified after a wall run drains.
WALL_VERIFY_LIMIT = 64


class LoadGenerator:
    """Drive one cluster with one profile; see the module docstring.

    Parameters
    ----------
    cluster:
        The :class:`~repro.shard.ShardedService` under test (anything with
        ``batch``/``insert``/``delete``, an ``admission`` gate and
        optionally ``resilience_stats`` works).
    profile:
        The :class:`~repro.loadgen.profile.TrafficProfile` to play.
    initial_objects:
        The objects already bulk-loaded into the cluster — seeds the
        delete pool and the verification oracle.
    registry:
        Optional metrics registry for the ``repro_loadgen_*`` instruments.
    """

    def __init__(
        self,
        cluster,
        profile: TrafficProfile,
        *,
        initial_objects: Sequence[Tuple[Box, float]] = (),
        registry: Optional[MetricsRegistry] = None,
        label: str = "loadgen",
    ) -> None:
        self.cluster = cluster
        self.profile = profile
        self.label = label
        self.registry = registry
        self._initial = [(box, float(value)) for box, value in initial_objects]
        self.schedule: List[ScheduledOp] = build_schedule(profile, self._initial)

    # -- public API ------------------------------------------------------------------

    def scheduled_op_counts(self) -> Dict[str, int]:
        """Planned operations per class (a pure function of the profile)."""
        return op_counts(self.schedule)

    def run(self, mode: str = "wall", **kwargs) -> SLOReport:
        """Execute the schedule; returns the frozen :class:`SLOReport`."""
        if mode == "wall":
            return self.run_wall(**kwargs)
        if mode == "virtual":
            return self.run_virtual(**kwargs)
        raise ValueError(f"unknown mode {mode!r} (use 'wall' or 'virtual')")

    # -- wall-clock open loop ---------------------------------------------------------

    def run_wall(self, max_workers: int = 32) -> SLOReport:
        """Open-loop wall-clock run: real threads, real gate, real seconds."""
        from concurrent.futures import ThreadPoolExecutor

        collector = TrafficCollector(self.profile, "wall", registry=self.registry, label=self.label)
        applied: List[Tuple[Box, float]] = []
        probes = _new_probe_totals()
        lock = threading.Lock()
        blips0, unavailable0 = self._resilience_snapshot()
        start = time.perf_counter()
        with ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-loadgen"
        ) as pool:
            for op in self.schedule:
                delay = (start + op.t) - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                pool.submit(self._fire, op, start, collector, applied, probes, lock)
        duration = time.perf_counter() - start
        self._verify_after(collector, applied)
        blips, unavailable = self._resilience_snapshot()
        return collector.report(
            duration,
            failover_blips=blips - blips0,
            unavailable=unavailable - unavailable0,
            extra={"scheduled": self.scheduled_op_counts(), "probes": probes},
        )

    def _fire(
        self,
        op: ScheduledOp,
        start: float,
        collector: TrafficCollector,
        applied: List[Tuple[Box, float]],
        probes: Dict[str, int],
        lock: threading.Lock,
    ) -> None:
        arrival = start + op.t
        try:
            partial = bounded = False
            if op.op in ("point", "batch"):
                outcome = self.cluster.batch(list(op.queries))
                partial = isinstance(outcome, PartialResult)
                bounded = isinstance(outcome, ApproxResult)
                if not partial and not bounded:
                    with lock:
                        _note_probes(probes, outcome)
            elif op.op == "insert":
                box, value = op.obj
                self.cluster.insert(box, value)
                with lock:
                    applied.append((box, value))
            else:
                box, value = op.obj
                self.cluster.delete(box, value)
                with lock:
                    applied.append((box, -value))
            latency_ms = 1000.0 * (time.perf_counter() - arrival)
            collector.record_ok(op.phase, op.op, latency_ms, partial=partial, bounded=bounded)
        except ServiceOverloadedError:
            collector.record_shed(op.phase, op.op)
        except Exception:  # noqa: BLE001 — a driver never dies with its target
            collector.record_error(op.phase, op.op)

    def _verify_after(
        self, collector: TrafficCollector, applied: Sequence[Tuple[Box, float]]
    ) -> None:
        """Post-drain bulk verification of the distinct check boxes."""
        oracle = self._oracle(applied)
        seen: List[Box] = []
        for op in self.schedule:
            if not op.check:
                continue
            for box in op.queries:
                if box not in seen:
                    seen.append(box)
            if len(seen) >= WALL_VERIFY_LIMIT:
                break
        for box in seen[:WALL_VERIFY_LIMIT]:
            outcome = self.cluster.box_sum(box)
            if isinstance(outcome, PartialResult):
                continue  # degraded answers are typed, not wrong — skip, don't fail
            if isinstance(outcome, ApproxResult):
                # A bounded answer must *contain* the exact value — that is
                # the certificate, so failing it is a real soundness bug.
                collector.record_check(outcome.results[0].contains(oracle.box_sum(box)))
                continue
            collector.record_check(self._close(outcome, oracle.box_sum(box)))

    # -- deterministic virtual-time loop ---------------------------------------------

    def run_virtual(
        self,
        op_cost_ms: float = VIRTUAL_OP_COST_MS,
        probe_cost_ms: float = VIRTUAL_PROBE_COST_MS,
        hit_cost_ms: float = VIRTUAL_HIT_COST_MS,
        page_cost_ms: float = VIRTUAL_PAGE_COST_MS,
    ) -> SLOReport:
        """Sequential execution under a virtual-time M/M-style queue model.

        The admission model mirrors :class:`~repro.service.locks.AdmissionGate`
        semantics: ``max_inflight`` virtual servers, a FIFO buffer of
        ``max_queue``, immediate shed beyond that — but only query classes
        shed (cluster mutations bypass the gate and queue on the writer
        lock, so the model queues them unboundedly too).
        """
        gate = self.cluster.admission
        max_inflight, max_queue = gate.max_inflight, gate.max_queue
        collector = TrafficCollector(
            self.profile, "virtual", registry=self.registry, label=self.label
        )
        oracle = self._oracle(())
        probes = _new_probe_totals()
        blips0, unavailable0 = self._resilience_snapshot()

        busy: List[float] = []  # finish times of the occupied virtual servers
        waiting: List[float] = []  # start times of arrivals still queued
        makespan = 0.0
        for op in self.schedule:
            t = op.t
            while waiting and waiting[0] <= t:
                heapq.heappop(waiting)
            queue_full = (
                busy
                and len(busy) >= max_inflight
                and busy[0] > t
                and len(waiting) >= max_queue
            )
            if queue_full and op.op in ("point", "batch"):
                if getattr(self.cluster, "approx_tier", None) is not None:
                    # Bounded degradation: answer from the synopsis instead of
                    # shedding.  The synopsis probe bypasses the gate (it does
                    # no shard work), so the op neither queues nor occupies a
                    # virtual server — it is priced per probe like a cache hit.
                    bounded_ms = self._degrade_virtual(op, oracle, collector, hit_cost_ms)
                    if bounded_ms is not None:
                        collector.record_ok(op.phase, op.op, bounded_ms, bounded=True)
                        continue
                collector.record_shed(op.phase, op.op)
                continue
            ok, cost_ms, partial, bounded = self._execute_virtual(
                op,
                oracle,
                collector,
                probes,
                op_cost_ms,
                probe_cost_ms,
                hit_cost_ms,
                page_cost_ms,
            )
            if not ok:
                collector.record_error(op.phase, op.op)
                continue
            if len(busy) < max_inflight:
                begin = t
            else:
                earliest = heapq.heappop(busy)
                begin = max(t, earliest)
                if begin > t:
                    heapq.heappush(waiting, begin)
            finish = begin + cost_ms / 1000.0
            heapq.heappush(busy, finish)
            if len(busy) > max_inflight:
                heapq.heappop(busy)
            makespan = max(makespan, finish)
            collector.record_ok(
                op.phase, op.op, 1000.0 * (finish - t), partial=partial, bounded=bounded
            )
        blips, unavailable = self._resilience_snapshot()
        return collector.report(
            makespan,
            failover_blips=blips - blips0,
            unavailable=unavailable - unavailable0,
            extra={"scheduled": self.scheduled_op_counts(), "probes": probes},
        )

    def _execute_virtual(
        self,
        op: ScheduledOp,
        oracle: NaiveBoxSum,
        collector: TrafficCollector,
        probes: Dict[str, int],
        op_cost_ms: float,
        probe_cost_ms: float,
        hit_cost_ms: float,
        page_cost_ms: float,
    ) -> Tuple[bool, float, bool, bool]:
        """Run one op now; returns (ok, virtual service ms, partial?, bounded?)."""
        cost_ms = op_cost_ms
        partial = bounded = False
        try:
            if op.op in ("point", "batch"):
                pages0 = self._pages()
                outcome = self.cluster.batch(list(op.queries))
                cost_ms += page_cost_ms * (self._pages() - pages0)
                if isinstance(outcome, PartialResult):
                    partial = True
                elif isinstance(outcome, ApproxResult):
                    # Outage blip converted to a bounded answer: price the
                    # synopsis probes and check containment, not closeness.
                    bounded = True
                    cost_ms += hit_cost_ms * outcome.probes
                    if op.check:
                        for box, got in zip(op.queries, outcome.results):
                            collector.record_check(got.contains(oracle.box_sum(box)))
                else:
                    _note_probes(probes, outcome)
                    cost_ms += (
                        probe_cost_ms * outcome.probes_executed
                        + hit_cost_ms * outcome.probe_cache_hits
                    )
                    if op.check:
                        for box, got in zip(op.queries, outcome.results):
                            collector.record_check(self._close(got, oracle.box_sum(box)))
            else:
                box, value = op.obj
                pages0 = self._pages()
                if op.op == "insert":
                    self.cluster.insert(box, value)
                    oracle.insert(box, value)
                else:
                    self.cluster.delete(box, value)
                    # A delete is an additive negation — mirror it as one so
                    # the oracle tracks exactly what the cluster applied.
                    oracle.insert(box, -value)
                cost_ms += page_cost_ms * (self._pages() - pages0)
        except ServiceOverloadedError:
            # Sequential execution cannot saturate the real gate; treat a
            # surprise rejection as what it is at run scale: an error.
            return False, cost_ms, False, False
        except Exception:  # noqa: BLE001 — chaos leaks surface as errors, not crashes
            return False, cost_ms, False, False
        return True, cost_ms, partial, bounded

    def _degrade_virtual(
        self,
        op: ScheduledOp,
        oracle: NaiveBoxSum,
        collector: TrafficCollector,
        hit_cost_ms: float,
    ) -> Optional[float]:
        """Answer a would-be-shed query from the synopsis; returns cost or None."""
        try:
            outcome = self.cluster.degraded_batch(list(op.queries), reason="overload")
        except Exception:  # noqa: BLE001 — tier refusal falls back to the shed path
            return None
        if op.check:
            for box, got in zip(op.queries, outcome.results):
                collector.record_check(got.contains(oracle.box_sum(box)))
        return VIRTUAL_OP_COST_MS + hit_cost_ms * outcome.probes

    # -- shared internals ------------------------------------------------------------

    def _oracle(self, applied: Sequence[Tuple[Box, float]]) -> NaiveBoxSum:
        oracle = NaiveBoxSum(self.profile.dims)
        for box, value in self._initial:
            oracle.insert(box, value)
        for box, value in applied:
            oracle.insert(box, value)
        return oracle

    @staticmethod
    def _close(got: float, want: float) -> bool:
        return math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9)

    def _pages(self) -> int:
        """Total page I/O across the shard primaries (0 if untracked)."""
        total = 0
        services = getattr(self.cluster, "services", ())
        for service in services:
            storage = getattr(getattr(service, "index", None), "storage", None)
            counter = getattr(storage, "counter", None)
            if counter is not None:
                total += counter.reads + counter.writes
        return total

    def _resilience_snapshot(self) -> Tuple[float, float]:
        """(failover blips, unavailable serves) across every replica group."""
        stats_fn = getattr(self.cluster, "resilience_stats", None)
        if stats_fn is None:
            return 0.0, 0.0
        blips = unavailable = 0.0
        for group in stats_fn():
            blips += float(group.get("failovers", 0.0))
            unavailable += float(group.get("unavailable", 0.0))
        return blips, unavailable


def _new_probe_totals() -> Dict[str, int]:
    return {"unique": 0, "pruned": 0, "covered": 0, "executed": 0, "cache_hits": 0}


def _note_probes(probes: Dict[str, int], outcome) -> None:
    """Fold one ClusterBatchResult's probe accounting into the run totals."""
    probes["unique"] += outcome.probes_unique
    probes["pruned"] += outcome.probes_pruned
    probes["covered"] += outcome.probes_covered
    probes["executed"] += outcome.probes_executed
    probes["cache_hits"] += outcome.probe_cache_hits


__all__ = [
    "LoadGenerator",
    "VIRTUAL_OP_COST_MS",
    "VIRTUAL_PROBE_COST_MS",
    "VIRTUAL_HIT_COST_MS",
    "VIRTUAL_PAGE_COST_MS",
    "WALL_VERIFY_LIMIT",
]
