"""Latency collection and SLO reporting for the traffic driver.

Per-request latencies are recorded into **fixed-bucket histograms** keyed
by ``(phase, operation class)`` — constant memory no matter how long the
run, and percentile extraction with error bounded by the containing
bucket's width (the shared estimator in :mod:`repro.obs.registry`).  The
collector also mirrors every observation into a ``repro_loadgen_*``
histogram/counter family on a metrics registry, so a traffic run shows up
in the same exposition as the service's own instruments.

:class:`SLOReport` is the run's scorecard: per phase and op class the
count/shed/error tallies and p50/p95/p99/p999, per phase the offered load,
achieved throughput and shed rate, plus the cross-check and failover
tallies.  It serializes to a stable dict (the CI artifact) and renders as
a text table (the human half of the same artifact).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs.registry import MetricsRegistry, estimate_percentile, null_registry
from .profile import OP_CLASSES, TrafficProfile

#: Latency bucket upper bounds in milliseconds — tapered so the p99/p999
#: of a sub-millisecond service and a multi-second outage blip both land
#: in buckets narrow relative to their magnitude.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.05,
    0.1,
    0.2,
    0.5,
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    200.0,
    500.0,
    1000.0,
    2000.0,
    5000.0,
)

#: Version of the serialized SLO report format.
SLO_REPORT_SCHEMA_VERSION = 1

#: The percentiles every SLO summary carries, as (label, q) pairs.
PERCENTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
    ("p999", 0.999),
)


class _Series:
    """One (phase, op) cell: fixed buckets plus count/sum/max and outcomes."""

    __slots__ = ("buckets", "count", "sheds", "errors", "partials", "bounded", "sum_ms", "max_ms")

    def __init__(self) -> None:
        self.buckets = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        self.count = 0
        self.sheds = 0
        self.errors = 0
        self.partials = 0
        self.bounded = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, latency_ms: float) -> None:
        self.count += 1
        self.sum_ms += latency_ms
        self.max_ms = max(self.max_ms, latency_ms)
        for i, bound in enumerate(LATENCY_BUCKETS_MS):
            if latency_ms <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def percentile(self, q: float) -> float:
        return estimate_percentile(LATENCY_BUCKETS_MS, self.buckets, q)

    def summary(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "count": float(self.count),
            "sheds": float(self.sheds),
            "errors": float(self.errors),
        }
        if self.partials:
            out["partials"] = float(self.partials)
        if self.bounded:
            out["bounded"] = float(self.bounded)
        if self.count:
            for label, q in PERCENTILES:
                out[f"{label}_ms"] = round(self.percentile(q), 4)
            out["mean_ms"] = round(self.sum_ms / self.count, 4)
            out["max_ms"] = round(self.max_ms, 4)
        return out


@dataclass
class SLOReport:
    """The scorecard of one traffic run (see module docstring)."""

    clock: str
    duration_s: float
    profile: Dict[str, Any]
    phases: Dict[str, Dict[str, Any]]
    totals: Dict[str, float]
    checks: Dict[str, float]
    resilience: Dict[str, float]
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SLO_REPORT_SCHEMA_VERSION,
            "kind": "traffic-slo",
            "clock": self.clock,
            "duration_s": round(self.duration_s, 4),
            "profile": self.profile,
            "phases": self.phases,
            "totals": self.totals,
            "checks": self.checks,
            "resilience": self.resilience,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "SLOReport":
        """Rehydrate a report from its :meth:`to_dict` form (e.g. a CI artifact)."""
        return cls(
            clock=str(doc["clock"]),
            duration_s=float(doc["duration_s"]),
            profile=dict(doc["profile"]),
            phases=dict(doc["phases"]),
            totals=dict(doc["totals"]),
            checks=dict(doc["checks"]),
            resilience=dict(doc["resilience"]),
            extra=dict(doc.get("extra", {})),
        )

    def phase_op(self, phase: str, op: str) -> Dict[str, float]:
        """One (phase, op) summary cell ({} when that cell saw no traffic)."""
        return self.phases.get(phase, {}).get("ops", {}).get(op, {})

    def render(self) -> str:
        """Text render: one table per phase plus the run-level footer."""
        lines: List[str] = []
        lines.append(
            f"traffic SLO report [{self.clock} clock, "
            f"{self.totals['completed']:g} ops in {self.duration_s:.2f}s]"
        )
        header = (
            f"{'phase':<8} {'op':<7} {'count':>6} {'shed':>5} {'err':>4}"
            f" {'p50':>8} {'p95':>8} {'p99':>8} {'p999':>8} {'max':>8}  (ms)"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for phase_name, phase in self.phases.items():
            for op in OP_CLASSES:
                cell = phase.get("ops", {}).get(op)
                if not cell or not (cell.get("count") or cell.get("sheds")):
                    continue
                lines.append(
                    f"{phase_name:<8} {op:<7} {cell['count']:>6g} {cell['sheds']:>5g}"
                    f" {cell['errors']:>4g}"
                    f" {cell.get('p50_ms', 0.0):>8.3f} {cell.get('p95_ms', 0.0):>8.3f}"
                    f" {cell.get('p99_ms', 0.0):>8.3f} {cell.get('p999_ms', 0.0):>8.3f}"
                    f" {cell.get('max_ms', 0.0):>8.3f}"
                )
            lines.append(
                f"{phase_name:<8} [offered {phase['offered']:g}, "
                f"throughput {phase['throughput_ops_s']:.1f} ops/s, "
                f"shed rate {100.0 * phase['shed_rate']:.2f}%]"
            )
        lines.append(
            f"totals: offered {self.totals['offered']:g}, "
            f"completed {self.totals['completed']:g}, "
            f"shed {self.totals['sheds']:g}, errors {self.totals['errors']:g}, "
            f"throughput {self.totals['throughput_ops_s']:.1f} ops/s"
        )
        lines.append(
            f"checks: {self.checks['passed']:g}/{self.checks['sampled']:g} sampled "
            f"answers exact, {self.checks['failed']:g} failed"
        )
        lines.append(
            f"resilience: {self.resilience['failover_blips']:g} failover blip(s), "
            f"{self.resilience['unavailable']:g} unavailable, "
            f"{self.resilience['partial_answers']:g} partial answer(s), "
            f"{self.resilience.get('bounded_answers', 0.0):g} bounded answer(s)"
        )
        return "\n".join(lines)


class TrafficCollector:
    """Accumulates one run's outcomes; :meth:`report` freezes the scorecard."""

    def __init__(
        self,
        profile: TrafficProfile,
        clock: str,
        registry: Optional[MetricsRegistry] = None,
        label: str = "loadgen",
    ) -> None:
        self.profile = profile
        self.clock = clock
        self.label = label
        self._series: Dict[Tuple[str, str], _Series] = {}
        self._checks_sampled = 0
        self._checks_failed = 0
        registry = registry if registry is not None else null_registry()
        self._m_latency = registry.histogram(
            "repro_loadgen_latency_seconds",
            "per-request latency from scheduled arrival to completion",
            buckets=tuple(b / 1000.0 for b in LATENCY_BUCKETS_MS),
        )
        self._m_ops = registry.counter(
            "repro_loadgen_ops", "driver operations, by phase/op/outcome"
        )

    def _cell(self, phase: str, op: str) -> _Series:
        series = self._series.get((phase, op))
        if series is None:
            series = self._series[(phase, op)] = _Series()
        return series

    # -- recording -----------------------------------------------------------------

    def record_ok(
        self,
        phase: str,
        op: str,
        latency_ms: float,
        partial: bool = False,
        bounded: bool = False,
    ) -> None:
        cell = self._cell(phase, op)
        cell.observe(latency_ms)
        if partial:
            cell.partials += 1
        if bounded:
            cell.bounded += 1
        self._m_latency.observe(latency_ms / 1000.0, phase=phase, op=op, label=self.label)
        self._m_ops.inc(phase=phase, op=op, outcome="ok", label=self.label)

    def record_shed(self, phase: str, op: str) -> None:
        self._cell(phase, op).sheds += 1
        self._m_ops.inc(phase=phase, op=op, outcome="shed", label=self.label)

    def record_error(self, phase: str, op: str) -> None:
        self._cell(phase, op).errors += 1
        self._m_ops.inc(phase=phase, op=op, outcome="error", label=self.label)

    def record_check(self, ok: bool) -> None:
        self._checks_sampled += 1
        if not ok:
            self._checks_failed += 1

    # -- reporting -----------------------------------------------------------------

    def report(
        self,
        duration_s: float,
        failover_blips: float = 0.0,
        unavailable: float = 0.0,
        extra: Optional[Dict[str, Any]] = None,
    ) -> SLOReport:
        """Freeze the scorecard; ``duration_s`` is in the collector's clock."""
        phases: Dict[str, Dict[str, Any]] = {}
        totals = {"offered": 0.0, "completed": 0.0, "sheds": 0.0, "errors": 0.0}
        partials = 0.0
        bounded = 0.0
        for phase in self.profile.phases:
            ops: Dict[str, Dict[str, float]] = {}
            offered = completed = sheds = errors = 0.0
            for op in OP_CLASSES:
                series = self._series.get((phase.name, op))
                if series is None:
                    continue
                ops[op] = series.summary()
                offered += series.count + series.sheds + series.errors
                completed += series.count
                sheds += series.sheds
                errors += series.errors
                partials += series.partials
                bounded += series.bounded
            phases[phase.name] = {
                "duration_s": phase.duration_s,
                "ops": ops,
                "offered": offered,
                "completed": completed,
                "sheds": sheds,
                "throughput_ops_s": completed / phase.duration_s if phase.duration_s else 0.0,
                "shed_rate": sheds / offered if offered else 0.0,
            }
            totals["offered"] += offered
            totals["completed"] += completed
            totals["sheds"] += sheds
            totals["errors"] += errors
        totals["throughput_ops_s"] = (totals["completed"] / duration_s if duration_s > 0 else 0.0)
        return SLOReport(
            clock=self.clock,
            duration_s=duration_s,
            profile=self.profile.to_dict(),
            phases=phases,
            totals=totals,
            checks={
                "sampled": float(self._checks_sampled),
                "failed": float(self._checks_failed),
                "passed": float(self._checks_sampled - self._checks_failed),
            },
            resilience={
                "failover_blips": float(failover_blips),
                "unavailable": float(unavailable),
                "partial_answers": float(partials),
                "bounded_answers": float(bounded),
            },
            extra=dict(extra or {}),
        )


__all__ = [
    "LATENCY_BUCKETS_MS",
    "PERCENTILES",
    "SLO_REPORT_SCHEMA_VERSION",
    "SLOReport",
    "TrafficCollector",
]
