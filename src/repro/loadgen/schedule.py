"""Deterministic open-loop operation schedules.

:func:`build_schedule` turns a :class:`~repro.loadgen.profile.TrafficProfile`
plus the initial dataset into a flat, time-ordered list of
:class:`ScheduledOp` — every arrival instant, operation class, tenant and
payload box fixed *before* execution starts.  Two properties matter:

* **Open loop.**  Arrival times are drawn from a (piecewise, optionally
  ramped) Poisson process and never depend on how fast the service answers.
  A load generator that waits for a response before sending the next
  request silently excludes queueing delay from its measurements — the
  *coordinated omission* trap; scheduling arrivals up front is what lets
  the driver charge a late answer for the whole time since its scheduled
  arrival.

* **Determinism.**  The stream is a pure function of the profile and the
  initial objects: seeded ``random.Random`` instances per concern (arrival
  process, op classes, tenant draws, payload synthesis, check sampling),
  per-tenant query streams materialized through the existing workload
  generators (:func:`repro.workloads.hot_query_boxes` for dashboard-style
  tenants, :func:`repro.workloads.hotspot_boxes` for spatially confined
  ones).  Same profile, same dataset → bit-identical schedule, which is
  what the replay tests and the smoke gate's op-count metrics pin.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..core.geometry import Box
from ..workloads import hot_query_boxes, hotspot_boxes
from .profile import OP_CLASSES, Phase, TrafficProfile

#: Average object-side fraction for objects synthesized by insert ops.
INSERT_SIDE_FRACTION = 1e-3

#: Value range for objects synthesized by insert ops.
INSERT_VALUE_RANGE = (0.0, 100.0)


class ZipfSampler:
    """Zipf-ranked categorical draws: rank 1 is hottest, O(log n) per draw."""

    def __init__(self, n: int, s: float) -> None:
        if n < 1:
            raise ValueError(f"population must be >= 1, got {n}")
        self.n = n
        self.s = s
        cumulative: List[float] = []
        total = 0.0
        for rank in range(1, n + 1):
            total += 1.0 / rank**s
            cumulative.append(total)
        self._cumulative = cumulative

    def sample(self, rng: random.Random) -> int:
        """One draw → a rank index in ``[0, n)`` (0 = hottest)."""
        r = rng.random() * self._cumulative[-1]
        return bisect.bisect_left(self._cumulative, r)


class ScheduledOp(NamedTuple):
    """One pre-planned operation: when, what, for whom, with which payload."""

    #: Scheduled arrival offset from run start, in seconds.
    t: float
    phase: str
    #: One of :data:`~repro.loadgen.profile.OP_CLASSES`.
    op: str
    tenant: int
    #: Query boxes (one for ``point``, ``batch_size`` for ``batch``).
    queries: Tuple[Box, ...] = ()
    #: The object payload of ``insert``/``delete`` ops.
    obj: Optional[Tuple[Box, float]] = None
    #: Sampled for naive cross-checking (query ops only).
    check: bool = False


def _arrival_times(phase: Phase, start: float, rng: random.Random) -> List[float]:
    """Poisson arrivals across one phase, thinned when the rate ramps.

    Candidates are generated at the phase's peak rate; each survives with
    probability ``rate(t) / peak`` — the standard thinning construction for
    a non-homogeneous Poisson process, here with one shared seeded RNG so
    the whole phase is reproducible.
    """
    peak = phase.peak_rate
    end = start + phase.duration_s
    times: List[float] = []
    t = start
    while True:
        t += rng.expovariate(peak)
        if t >= end:
            return times
        if phase.rate_end is None or rng.random() * peak <= phase.rate_at(t - start):
            times.append(t)


def _pick_op(mix_weights: Tuple[float, ...], rng: random.Random) -> str:
    r = rng.random() * sum(mix_weights)
    edge = 0.0
    for name, weight in zip(OP_CLASSES, mix_weights):
        edge += weight
        if r < edge:
            return name
    return OP_CLASSES[-1]


def _hotspot_tenants(profile: TrafficProfile) -> frozenset:
    """Which tenant ids are spatially confined to a hotspot sub-region.

    Spread across the popularity ranking (starting at rank 2) so hotspot
    traffic is actually hot — confining only tail tenants would make the
    spatial skew invisible at any realistic Zipf exponent.
    """
    if profile.hotspot_fraction <= 0.0:
        return frozenset()
    if profile.hotspot_fraction >= 1.0:
        return frozenset(range(profile.tenants))
    step = max(1, round(1.0 / profile.hotspot_fraction))
    return frozenset(t for t in range(profile.tenants) if t % step == 1)


def build_schedule(
    profile: TrafficProfile,
    initial_objects: Sequence[Tuple[Box, float]] = (),
) -> List[ScheduledOp]:
    """The full deterministic operation stream for one run of ``profile``.

    ``initial_objects`` seeds the delete pool (the objects assumed
    bulk-loaded before traffic starts); scheduled inserts join the pool,
    scheduled deletes draw from it uniformly.  A delete scheduled while the
    pool is empty is re-planned as an insert, so the stream never references
    an object it cannot name.
    """
    seed = profile.seed
    arrival_rng = random.Random((seed << 4) ^ 0x0A271)
    op_rng = random.Random((seed << 4) ^ 0x1B3F2)
    tenant_rng = random.Random((seed << 4) ^ 0x2C5E3)
    payload_rng = random.Random((seed << 4) ^ 0x3D7C4)
    check_rng = random.Random((seed << 4) ^ 0x4E9A5)

    tenant_sampler = ZipfSampler(profile.tenants, profile.tenant_zipf_s)
    hotspot_ids = _hotspot_tenants(profile)

    # Pass 1: arrival skeleton — time, phase, op class, tenant, check flag.
    skeleton: List[Tuple[float, str, str, int, bool]] = []
    start = 0.0
    for phase in profile.phases:
        mix_weights = profile.mix_for(phase).as_tuple()
        for t in _arrival_times(phase, start, arrival_rng):
            op = _pick_op(mix_weights, op_rng)
            tenant = tenant_sampler.sample(tenant_rng)
            check = (op in ("point", "batch") and check_rng.random() < profile.check_fraction)
            skeleton.append((t, phase.name, op, tenant, check))
        start += phase.duration_s

    # Pass 2: per-tenant query-box demand, then one workload-generator call
    # per tenant materializes its whole stream (first-come order).
    demand: Dict[int, int] = {}
    for _t, _phase, op, tenant, _check in skeleton:
        if op == "point":
            demand[tenant] = demand.get(tenant, 0) + 1
        elif op == "batch":
            demand[tenant] = demand.get(tenant, 0) + profile.batch_size
    streams: Dict[int, List[Box]] = {}
    for tenant, needed in demand.items():
        tenant_seed = seed * 7919 + tenant
        if tenant in hotspot_ids:
            streams[tenant] = hotspot_boxes(
                needed,
                qbs_fraction=profile.qbs_fraction,
                dims=profile.dims,
                hotspot=profile.hotspot,
                seed=tenant_seed,
            )
        else:
            streams[tenant] = hot_query_boxes(
                needed,
                qbs_fraction=profile.qbs_fraction,
                dims=profile.dims,
                pool_size=profile.pool_size,
                zipf_s=profile.query_zipf_s,
                seed=tenant_seed,
            )
    cursors: Dict[int, int] = {tenant: 0 for tenant in streams}

    # Pass 3: payload assembly, tracking the live-object pool for deletes.
    live: List[Tuple[Box, float]] = list(initial_objects)
    ops: List[ScheduledOp] = []
    for t, phase_name, op, tenant, check in skeleton:
        if op == "delete" and not live:
            op = "insert"
        if op in ("point", "batch"):
            count = 1 if op == "point" else profile.batch_size
            cursor = cursors[tenant]
            boxes = tuple(streams[tenant][cursor : cursor + count])
            cursors[tenant] = cursor + count
            ops.append(ScheduledOp(t, phase_name, op, tenant, queries=boxes, check=check))
        elif op == "insert":
            obj = _synthesize_object(profile.dims, payload_rng)
            live.append(obj)
            ops.append(ScheduledOp(t, phase_name, "insert", tenant, obj=obj))
        else:
            index = payload_rng.randrange(len(live))
            # O(1) removal: swap the tail in; pool order is rng-opaque anyway.
            live[index], live[-1] = live[-1], live[index]
            obj = live.pop()
            ops.append(ScheduledOp(t, phase_name, "delete", tenant, obj=obj))
    return ops


def _synthesize_object(dims: int, rng: random.Random) -> Tuple[Box, float]:
    max_side = 2.0 * INSERT_SIDE_FRACTION
    sides = [rng.uniform(0.0, max_side) for _ in range(dims)]
    low = [rng.uniform(0.0, 1.0 - s) for s in sides]
    high = [lo + s for lo, s in zip(low, sides)]
    return Box(low, high), rng.uniform(*INSERT_VALUE_RANGE)


def op_counts(ops: Sequence[ScheduledOp]) -> Dict[str, int]:
    """Scheduled operations per class (deterministic given the profile)."""
    counts = {name: 0 for name in OP_CLASSES}
    for op in ops:
        counts[op.op] += 1
    return counts


__all__ = [
    "INSERT_SIDE_FRACTION",
    "ScheduledOp",
    "ZipfSampler",
    "build_schedule",
    "op_counts",
]
