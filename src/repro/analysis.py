"""Analytic cost model: Theorem 4's complexities and empirical-fit helpers.

Table 1 of the paper gives the ECDF-B-trees' costs in page I/Os:

==============  ==========================  ==========================
operation       ECDF-Bu-tree                ECDF-Bq-tree
==============  ==========================  ==========================
space           O((n/B)·log_B^{d-1} n)      O(n·B^{d-2}·log_B^{d-1} n)
bulk-loading    O((n/B)·log_B^d n)          O(n·B^{d-2}·log_B^d n)
query           O(B^{d-1}·log_B^d n)        O(log_B^d n)
update (amort.) O(log_B^d n)                O(B^{d-1}·log_B^d n)
==============  ==========================  ==========================

The Section 5 discussion adds the BA-tree's average case: poly-logarithmic
queries (like Bq) with only O(√B) borders touched per update per node.

This module evaluates those formulas (for sanity lines in benchmark
output) and fits measured series to power laws so experiments can check
the paper's growth predictions quantitatively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .core.errors import InvalidQueryError


def _log_b(n: float, b: float) -> float:
    """``log_B n``, floored at 1 so constant factors dominate tiny inputs."""
    if n <= 1 or b <= 1:
        return 1.0
    return max(1.0, math.log(n) / math.log(b))


@dataclass(frozen=True)
class Theorem4:
    """Evaluate Table 1's cost formulas for one (B, d) configuration."""

    page_capacity: int
    dims: int

    def _check(self) -> None:
        if self.page_capacity < 2 or self.dims < 1:
            raise InvalidQueryError(f"invalid configuration B={self.page_capacity}, d={self.dims}")

    def bu_space(self, n: int) -> float:
        """ECDF-Bu space in pages: (n/B)·log_B^{d-1} n."""
        self._check()
        b, d = self.page_capacity, self.dims
        return (n / b) * _log_b(n, b) ** (d - 1)

    def bq_space(self, n: int) -> float:
        """ECDF-Bq space in pages: n·B^{d-2}·log_B^{d-1} n."""
        self._check()
        b, d = self.page_capacity, self.dims
        return n * b ** (d - 2) * _log_b(n, b) ** (d - 1)

    def bu_query(self, n: int) -> float:
        """ECDF-Bu query I/Os: B^{d-1}·log_B^d n."""
        self._check()
        b, d = self.page_capacity, self.dims
        return b ** (d - 1) * _log_b(n, b) ** d

    def bq_query(self, n: int) -> float:
        """ECDF-Bq query I/Os: log_B^d n."""
        self._check()
        b, d = self.page_capacity, self.dims
        return _log_b(n, b) ** d

    def bu_update(self, n: int) -> float:
        """ECDF-Bu amortized update I/Os: log_B^d n."""
        return self.bq_query(n)

    def bq_update(self, n: int) -> float:
        """ECDF-Bq amortized update I/Os: B^{d-1}·log_B^d n."""
        return self.bu_query(n)

    def batree_query_avg(self, n: int) -> float:
        """BA-tree average query I/Os: poly-logarithmic, like Bq."""
        return self.bq_query(n)

    def batree_update_avg(self, n: int) -> float:
        """BA-tree average update I/Os: √B^{d-1}·log_B^d n (√B borders cut per node)."""
        self._check()
        b, d = self.page_capacity, self.dims
        return math.sqrt(b) ** (d - 1) * _log_b(n, b) ** d


def fit_power_law(points: Sequence[Tuple[float, float]]) -> Tuple[float, float]:
    """Least-squares fit of ``y = c·x^e`` on log-log axes; returns ``(e, c)``.

    Used to compare measured space/query/update growth against the
    exponents Table 1 predicts (e.g. Bq space should fit e ≈ 1 in n,
    Bu space e ≈ 1 as well but with a 1/B coefficient).
    """
    pts = [(x, y) for x, y in points if x > 0 and y > 0]
    if len(pts) < 2:
        raise InvalidQueryError("power-law fit needs at least two positive points")
    lx = [math.log(x) for x, _y in pts]
    ly = [math.log(y) for _x, y in pts]
    n = len(pts)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    var_x = sum((x - mean_x) ** 2 for x in lx)
    if var_x == 0:
        raise InvalidQueryError("power-law fit needs at least two distinct x values")
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    exponent = cov / var_x
    coefficient = math.exp(mean_y - exponent * mean_x)
    return exponent, coefficient


def growth_ratio(points: Sequence[Tuple[float, float]]) -> float:
    """``y_last / y_first`` normalized by ``x_last / x_first`` — 1.0 means linear."""
    if len(points) < 2:
        raise InvalidQueryError("growth ratio needs at least two points")
    (x0, y0), (x1, y1) = points[0], points[-1]
    if x0 <= 0 or y0 <= 0 or x1 <= x0:
        raise InvalidQueryError("growth ratio needs increasing positive points")
    return (y1 / y0) / (x1 / x0)


def predicted_rows(
    n_values: Sequence[int], page_capacity: int, dims: int
) -> List[Tuple[str, int, float, float, float]]:
    """Table 1 predictions for an n sweep: (variant, n, space, query, update)."""
    model = Theorem4(page_capacity, dims)
    rows: List[Tuple[str, int, float, float, float]] = []
    for n in n_values:
        rows.append(("Bu", n, model.bu_space(n), model.bu_query(n), model.bu_update(n)))
    for n in n_values:
        rows.append(("Bq", n, model.bq_space(n), model.bq_query(n), model.bq_update(n)))
    return rows
