"""Byte-level page codecs: struct-packed node images for the durable pager.

The in-memory simulated disk stores node *objects* and accounts sizes via
:mod:`repro.storage.layout`; this module provides the real thing for the
structures that need durability — fixed-size binary page images that
:class:`repro.storage.filepager.FilePager` writes to actual disk slots.

The layout of an aggregated-B+-tree page::

    leaf:      'L' | u32 next_pid | u32 count | count * (f64 key | value) | value total
    internal:  'I' | u32 count    | (count-1) * f64 sep | count * u32 child
               | count * value agg | value total

Values are encoded by a pluggable :class:`ValueCodec`: 8-byte scalars,
16-byte (sum, count) pairs, or length-prefixed polynomial coefficient
tuples — matching exactly the byte budgets the layout calculator charges.

Every durable slot additionally ends in a CRC32 of its body
(:func:`seal_page` / :func:`unseal_page`), so a torn write or a flipped
bit surfaces as :class:`~repro.core.errors.PageCorruptionError` instead of
a silently wrong aggregate.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Tuple

from ..bptree.node import InternalNode, LeafNode
from ..core.errors import PageCorruptionError, PageOverflowError, StorageError
from ..core.polynomial import Polynomial
from ..core.values import SumCount
from .layout import PAGE_CHECKSUM_BYTES

_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")
_NO_PAGE_WIRE = 0xFFFFFFFF  # NO_PAGE (-1) on the wire


def seal_page(body: bytes, page_size: int) -> bytes:
    """Return the full slot image: ``body`` padded plus a trailing CRC32.

    ``body`` must fit in ``page_size - PAGE_CHECKSUM_BYTES`` bytes; the CRC
    covers the entire padded body so corruption anywhere in the slot is
    detected.
    """
    capacity = page_size - PAGE_CHECKSUM_BYTES
    if len(body) > capacity:
        raise PageOverflowError(f"page body needs {len(body)} bytes > slot capacity {capacity}")
    padded = body + b"\x00" * (capacity - len(body))
    return padded + _U32.pack(zlib.crc32(padded))


def unseal_page(data: bytes, label: object) -> bytes:
    """Verify a slot's trailing CRC32 and return its body (without the CRC).

    Raises :class:`PageCorruptionError` when the stored checksum does not
    match the contents — ``label`` (a pid or "header") names the slot in
    the error message.
    """
    if len(data) <= PAGE_CHECKSUM_BYTES:
        raise PageCorruptionError(f"page {label} too short to carry a checksum")
    body, trailer = data[:-PAGE_CHECKSUM_BYTES], data[-PAGE_CHECKSUM_BYTES:]
    (stored,) = _U32.unpack(trailer)
    actual = zlib.crc32(body)
    if stored != actual:
        raise PageCorruptionError(
            f"checksum mismatch on page {label}: "
            f"stored 0x{stored:08x}, computed 0x{actual:08x}"
        )
    return body


class ValueCodec:
    """Encode/decode one aggregate value; subclasses fix the value type."""

    def encode(self, value: Any) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes, offset: int) -> Tuple[Any, int]:
        """Return ``(value, new_offset)``."""
        raise NotImplementedError


class ScalarValueCodec(ValueCodec):
    """Plain 8-byte float values (SUM / COUNT aggregation)."""

    def encode(self, value: Any) -> bytes:
        return _F64.pack(float(value))

    def decode(self, data: bytes, offset: int) -> Tuple[float, int]:
        return _F64.unpack_from(data, offset)[0], offset + 8


class SumCountValueCodec(ValueCodec):
    """16-byte (sum, count) pairs for AVG-capable indices."""

    def encode(self, value: Any) -> bytes:
        if not isinstance(value, SumCount):
            raise StorageError(f"expected SumCount, got {type(value).__name__}")
        return _F64.pack(value.total) + _F64.pack(value.count)

    def decode(self, data: bytes, offset: int) -> Tuple[SumCount, int]:
        total = _F64.unpack_from(data, offset)[0]
        count = _F64.unpack_from(data, offset + 8)[0]
        return SumCount(total, count), offset + 16


class PolynomialValueCodec(ValueCodec):
    """Length-prefixed coefficient tuples: u16 terms, then per term
    ``dims`` exponent bytes and an 8-byte coefficient."""

    def __init__(self, dims: int) -> None:
        if dims < 1:
            raise StorageError(f"polynomial arity must be >= 1, got {dims}")
        self.dims = dims

    def encode(self, value: Any) -> bytes:
        if not isinstance(value, Polynomial):
            raise StorageError(f"expected Polynomial, got {type(value).__name__}")
        if value.dims != self.dims:
            raise StorageError(f"polynomial arity {value.dims} != codec arity {self.dims}")
        terms = value.terms
        out = [struct.pack("<H", len(terms))]
        for exps, coeff in sorted(terms.items()):
            if any(e > 255 for e in exps):
                raise StorageError(f"exponent too large to encode: {exps}")
            out.append(bytes(exps))
            out.append(_F64.pack(coeff))
        return b"".join(out)

    def decode(self, data: bytes, offset: int) -> Tuple[Polynomial, int]:
        (n_terms,) = struct.unpack_from("<H", data, offset)
        offset += 2
        terms = {}
        for _ in range(n_terms):
            exps = tuple(data[offset : offset + self.dims])
            offset += self.dims
            coeff = _F64.unpack_from(data, offset)[0]
            offset += 8
            terms[exps] = coeff
        return Polynomial(self.dims, terms), offset


class BPlusNodeCodec:
    """Serializes aggregated-B+-tree pages to fixed-size binary images."""

    def __init__(self, value_codec: ValueCodec, zero: Any = 0.0) -> None:
        self.value_codec = value_codec
        self.zero = zero

    # -- encoding --------------------------------------------------------------

    def encode(self, node: Any, page_size: int) -> bytes:
        """Encode a node, zero-padded to ``page_size``; raises when it can't fit."""
        if isinstance(node, LeafNode):
            image = self._encode_leaf(node)
        elif isinstance(node, InternalNode):
            image = self._encode_internal(node)
        else:
            raise StorageError(f"cannot encode page payload {type(node).__name__}")
        if len(image) > page_size:
            raise PageOverflowError(
                f"encoded page needs {len(image)} bytes > page size {page_size}"
            )
        return image + b"\x00" * (page_size - len(image))

    def _encode_leaf(self, node: LeafNode) -> bytes:
        out = [b"L", _U32.pack(_pid_to_wire(node.next_pid)), _U32.pack(len(node.keys))]
        for key, value in zip(node.keys, node.values):
            out.append(_F64.pack(key))
            out.append(self.value_codec.encode(value))
        out.append(self.value_codec.encode(node.total))
        return b"".join(out)

    def _encode_internal(self, node: InternalNode) -> bytes:
        out = [b"I", _U32.pack(len(node.children))]
        for sep in node.seps:
            out.append(_F64.pack(sep))
        for child in node.children:
            out.append(_U32.pack(_pid_to_wire(child)))
        for agg in node.aggs:
            out.append(self.value_codec.encode(agg))
        out.append(self.value_codec.encode(node.total))
        return b"".join(out)

    # -- decoding ----------------------------------------------------------------

    def decode(self, data: bytes, pid: int) -> Any:
        """Rebuild the node object from a page image."""
        tag = data[0:1]
        if tag == b"L":
            return self._decode_leaf(data, pid)
        if tag == b"I":
            return self._decode_internal(data, pid)
        raise StorageError(f"unknown page tag {tag!r} on page {pid}")

    def _decode_leaf(self, data: bytes, pid: int) -> LeafNode:
        node = LeafNode(pid, self.zero)
        node.next_pid = _pid_from_wire(_U32.unpack_from(data, 1)[0])
        count = _U32.unpack_from(data, 5)[0]
        offset = 9
        for _ in range(count):
            key = _F64.unpack_from(data, offset)[0]
            offset += 8
            value, offset = self.value_codec.decode(data, offset)
            node.keys.append(key)
            node.values.append(value)
        node.total, _offset = self.value_codec.decode(data, offset)
        return node

    def _decode_internal(self, data: bytes, pid: int) -> InternalNode:
        node = InternalNode(pid, self.zero)
        count = _U32.unpack_from(data, 1)[0]
        offset = 5
        for _ in range(count - 1):
            node.seps.append(_F64.unpack_from(data, offset)[0])
            offset += 8
        for _ in range(count):
            node.children.append(_pid_from_wire(_U32.unpack_from(data, offset)[0]))
            offset += 4
        for _ in range(count):
            agg, offset = self.value_codec.decode(data, offset)
            node.aggs.append(agg)
        node.total, _offset = self.value_codec.decode(data, offset)
        return node


def _pid_to_wire(pid: int) -> int:
    return _NO_PAGE_WIRE if pid < 0 else pid


def _pid_from_wire(raw: int) -> int:
    return -1 if raw == _NO_PAGE_WIRE else raw
