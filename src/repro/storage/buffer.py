"""LRU buffer pool and the aR-tree path buffer.

The paper: "For all indices, we used LRU buffering.  For the aR-tree,
besides using a LRU buffer, we also used a path buffer which buffers the
most recently accessed path of nodes.  We used 8KB page size and 10MB
memory buffer."

A page *access* that misses the pool costs one read I/O; evicting a dirty
page costs one write I/O.  Structures call :meth:`BufferPool.access` on
every page they touch, so the counters reflect exactly the page traffic a
real disk-resident implementation would generate.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Sequence

from ..core.errors import StorageError
from .stats import IOCounter


class BufferPool:
    """A fixed-capacity LRU cache of page ids with dirty tracking.

    ``capacity_pages=None`` models an unbounded buffer: the first touch of a
    page is still a read miss (it has to come from disk once), but nothing
    is ever evicted.

    The pool is single-threaded by default (zero locking cost on the
    hot path).  Multi-reader users — the :mod:`repro.service` query layer
    runs concurrent box-sums over one shared pool — must call
    :meth:`make_thread_safe` first, so a page fetch can never interleave
    with another thread's LRU bookkeeping or write-back flush.
    """

    def __init__(
        self,
        capacity_pages: Optional[int] = 1280,
        counter: Optional[IOCounter] = None,
    ) -> None:
        if capacity_pages is not None and capacity_pages <= 0:
            raise StorageError(f"capacity_pages must be positive, got {capacity_pages}")
        self.capacity_pages = capacity_pages
        self.counter = counter if counter is not None else IOCounter()
        #: pid -> dirty flag, in LRU order (oldest first).
        self._resident: "OrderedDict[int, bool]" = OrderedDict()
        #: Installed by :meth:`make_thread_safe`; None keeps the fast path.
        self._lock: Optional[threading.Lock] = None

    def make_thread_safe(self) -> None:
        """Serialize accesses/flushes behind a lock (idempotent).

        Until this is called the pool assumes one thread; afterwards every
        state-touching method takes the lock.  The disabled path pays one
        attribute check, matching the tracing hooks' zero-cost discipline.
        """
        if self._lock is None:
            self._lock = threading.Lock()

    # -- core protocol -------------------------------------------------------

    def access(self, pid: int, write: bool = False) -> None:
        """Touch page ``pid``; account a read I/O on miss, mark dirty on write."""
        lock = self._lock
        if lock is None:
            return self._access(pid, write)
        with lock:
            return self._access(pid, write)

    def _access(self, pid: int, write: bool) -> None:
        if pid in self._resident:
            self.counter.hits += 1
            self._resident.move_to_end(pid)
            if write:
                self._resident[pid] = True
            return
        self.counter.reads += 1
        self._resident[pid] = write
        if self.capacity_pages is not None and len(self._resident) > self.capacity_pages:
            self._evict_oldest()

    def _evict_oldest(self) -> None:
        _pid, dirty = self._resident.popitem(last=False)
        if dirty:
            self.counter.writes += 1

    # -- management -----------------------------------------------------------

    def invalidate(self, pid: int) -> None:
        """Drop a page from the pool without a write-back (the page was freed)."""
        lock = self._lock
        if lock is None:
            self._resident.pop(pid, None)
            return
        with lock:
            self._resident.pop(pid, None)

    def flush(self) -> int:
        """Write back every dirty page; returns the number of write I/Os issued."""
        lock = self._lock
        if lock is None:
            return self._flush()
        with lock:
            return self._flush()

    def _flush(self) -> int:
        written = 0
        for pid, dirty in self._resident.items():
            if dirty:
                self._resident[pid] = False
                written += 1
        self.counter.writes += written
        return written

    def clear(self) -> None:
        """Empty the pool without counting write-backs (cold-cache reset)."""
        lock = self._lock
        if lock is None:
            self._resident.clear()
            return
        with lock:
            self._resident.clear()

    @property
    def resident_pages(self) -> int:
        """Number of pages currently buffered."""
        return len(self._resident)

    def is_resident(self, pid: int) -> bool:
        """True when ``pid`` would hit (does not update LRU order)."""
        return pid in self._resident

    # -- observability ---------------------------------------------------------

    def watch(self, registry=None, **labels: str):
        """Publish this pool's I/O counter into a metrics registry.

        Registers a pull collector (:class:`repro.obs.IOCounterCollector`),
        so the :meth:`access` hot path stays untouched — the registry reads
        the counter totals at collection time.  Returns the collector for
        later :meth:`~repro.obs.MetricsRegistry.unregister_collector`.
        """
        from ..obs.registry import IOCounterCollector, get_registry

        registry = registry if registry is not None else get_registry()
        return registry.register_collector(IOCounterCollector(self.counter, **labels))


class PathBuffer:
    """The aR-tree's extra cache of the most recently accessed root-to-leaf path.

    Pages on the remembered path are served for free; everything else falls
    through to the LRU pool.  The aR-tree replaces the remembered path after
    each descent, which is exactly how consecutive queries over nearby boxes
    avoid re-reading the upper levels.

    Unlike :class:`BufferPool`, the path buffer is inherently per-query
    state and has no thread-safe mode: concurrent aR-tree queries must be
    serialized by the caller (:class:`repro.service.QueryService` holds a
    mutex around object-backend queries for exactly this reason).
    """

    def __init__(self, pool: BufferPool) -> None:
        self._pool = pool
        self._path: tuple[int, ...] = ()

    def access(self, pid: int, write: bool = False) -> None:
        """Touch a page, serving it for free when it is on the remembered path."""
        if not write and pid in self._path:
            self._pool.counter.hits += 1
            return
        self._pool.access(pid, write=write)

    def remember(self, path: Sequence[int]) -> None:
        """Record the most recently traversed root-to-leaf path."""
        self._path = tuple(path)

    def forget(self) -> None:
        """Drop the remembered path (e.g. after an update restructures the tree)."""
        self._path = ()
