"""I/O accounting and the paper's cost model.

The paper's experiments report two metrics:

* Figures 9a/9b — index size in pages and *number of page I/Os*;
* Figure 9c — total execution time computed as "the sum of CPU time
  (measured by the getrusage system call) and the I/O time (measured by the
  number of I/Os multiplied by 10 ms)".

:class:`IOCounter` tracks the page I/Os the buffer pool observes and
:class:`CostModel` converts (CPU seconds, I/O count) into that combined
execution time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class IOCounter:
    """Mutable counter of page-level traffic.

    ``reads`` counts buffer misses that fetched a page, ``writes`` counts
    dirty-page write-backs, ``hits`` counts accesses served from the buffer.
    """

    reads: int = 0
    writes: int = 0
    hits: int = 0

    @property
    def total_ios(self) -> int:
        """Reads plus writes — the figure the paper plots."""
        return self.reads + self.writes

    @property
    def accesses(self) -> int:
        """All page touches, whether or not they cost an I/O."""
        return self.reads + self.hits

    def reset(self) -> None:
        """Zero every counter (used between experiment phases)."""
        self.reads = 0
        self.writes = 0
        self.hits = 0

    def snapshot(self) -> "IOCounter":
        """Immutable-ish copy for before/after deltas."""
        return IOCounter(self.reads, self.writes, self.hits)

    def delta(self, before: "IOCounter") -> "IOCounter":
        """Counter difference ``self - before``."""
        return IOCounter(
            self.reads - before.reads,
            self.writes - before.writes,
            self.hits - before.hits,
        )


@dataclass(frozen=True)
class CostModel:
    """Combined CPU + I/O execution-time model (10 ms per I/O by default)."""

    io_time_ms: float = 10.0

    def execution_time(self, cpu_seconds: float, ios: int) -> float:
        """Total modeled time in seconds for a workload."""
        return cpu_seconds + ios * self.io_time_ms / 1000.0


@dataclass
class Stopwatch:
    """Context manager measuring CPU time via ``time.process_time``.

    Stands in for the paper's ``getrusage`` measurements.
    """

    cpu_seconds: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Stopwatch":
        self._start = time.process_time()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.cpu_seconds += time.process_time() - self._start
