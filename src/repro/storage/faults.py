"""Fault injection for the durable storage path.

A crash-safety claim is only as good as the crashes it was tested against,
so this module simulates them deterministically: a :class:`FaultInjector`
hands out :class:`FaultyFile` wrappers (via the ``opener`` hook that
:class:`~repro.storage.filepager.FilePager` and
:class:`~repro.storage.wal.WriteAheadLog` accept), counts every mutating
file operation across *all* wrapped files — page file and WAL alike — and
fires one fault at a chosen operation index:

``crash``
    The Nth mutation never happens; the process is "dead" — every further
    operation raises :class:`SimulatedCrashError`.
``torn``
    The Nth write persists only a prefix of its buffer (a torn page/record),
    then the process dies as for ``crash``.
``oserror``
    The Nth mutation raises :class:`OSError` once (a transient I/O failure);
    the file stays usable afterwards.
``bitflip``
    The Nth write lands with one bit flipped — silent corruption that the
    page/record checksums must catch later.

Underlying files are opened *unbuffered*, so "what reached the OS before
the crash" is exactly what the test reads back afterwards; nothing is
un-torn by a destructor flush.

**Determinism.**  Every fault is reproducible.  Unseeded
(``seed=None``, the default), the damage shape is fixed: a torn write
persists exactly the first half of the buffer and a bitflip flips bit 0
of the middle byte — the legacy behavior, byte-for-byte.  Seeded, the
torn prefix length and the flipped bit's (byte, bit) position are drawn
from a private ``random.Random(seed)`` — same seed, same workload ⇒ the
same bytes on disk, while different seeds explore different damage (a
torn boundary the recovery scan mishandles, a flipped bit a weak checksum
misses).  The draw happens when the fault *fires*, so the sequence of
mutating operations is the only other input.

The every-write-point torture loop built on top of this lives in
:func:`repro.testing.check_crash_recovery`; the serving-path analogue
(chaos on live replica groups) is :mod:`repro.resilience.chaos`.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Optional


class SimulatedCrashError(Exception):
    """The injector killed the simulated process at a crash point.

    Deliberately *not* a :class:`~repro.core.errors.ReproError`: library
    code must never catch it, exactly as it could never catch a real
    power failure.
    """


@dataclass
class CrashPoint:
    """Which mutating operation to fault, and how.

    ``at_op`` is 1-based over the injector's shared counter; ``None`` never
    fires (useful for dry runs that just count a workload's write points).
    """

    at_op: Optional[int] = None
    mode: str = "crash"  # crash | torn | oserror | bitflip

    _MODES = ("crash", "torn", "oserror", "bitflip")

    def __post_init__(self) -> None:
        if self.mode not in self._MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; pick one of {self._MODES}")


class FaultInjector:
    """Shared fault state for every file opened through :meth:`opener`.

    ``seed`` selects the damage shape for ``torn``/``bitflip`` faults:
    None keeps the legacy fixed damage (half-prefix tear, middle-byte
    bit 0 flip); an int draws tear length and flip position from
    ``random.Random(seed)`` — deterministic per seed, varied across seeds.
    """

    def __init__(
        self, crash_point: Optional[CrashPoint] = None, *, seed: Optional[int] = None
    ) -> None:
        self.crash_point = crash_point or CrashPoint()
        self.seed = seed
        self._rng = random.Random(seed) if seed is not None else None
        self.ops = 0  # mutating operations observed (write/truncate/fsync)
        self.fired = False
        self.crashed = False

    # -- damage shapes (deterministic; see the module docstring) ---------------------

    def torn_length(self, size: int) -> int:
        """How many bytes of a ``size``-byte torn write actually persist."""
        if self._rng is None:
            return size // 2
        return self._rng.randrange(size) if size else 0

    def flip_position(self, size: int) -> "tuple[int, int]":
        """(byte index, bit index) a bitflip fault damages in a write."""
        if self._rng is None:
            return size // 2, 0
        return self._rng.randrange(size), self._rng.randrange(8)

    def opener(self, path: str, mode: str) -> "FaultyFile":
        """Drop-in for ``open(path, mode)`` producing wrapped, unbuffered files."""
        return FaultyFile(open(path, mode, buffering=0), self)

    # -- fault arming ----------------------------------------------------------------

    def _check_dead(self) -> None:
        if self.crashed:
            raise SimulatedCrashError(
                f"operation on a crashed process (crash point {self.crash_point})"
            )

    def _arm(self, is_write: bool) -> Optional[str]:
        """Count one mutation; return the fault mode to apply now, if any."""
        self._check_dead()
        self.ops += 1
        point = self.crash_point
        if self.fired or point.at_op is None or self.ops < point.at_op:
            return None
        # Tearing or bit-flipping needs a buffer; on fsync/truncate a torn
        # fault degrades to a plain crash and a bitflip waits for a write.
        if point.mode == "bitflip" and not is_write:
            return None
        self.fired = True
        if point.mode == "crash" or (point.mode == "torn" and not is_write):
            self.crashed = True
            raise SimulatedCrashError(f"simulated crash at op {self.ops}")
        if point.mode == "oserror":
            raise OSError(f"simulated I/O failure at op {self.ops}")
        return point.mode  # torn | bitflip, applied by the caller


class FaultyFile:
    """File-object proxy that routes mutations through a :class:`FaultInjector`."""

    def __init__(self, raw, injector: FaultInjector) -> None:
        self._raw = raw
        self._injector = injector

    # -- mutating operations ---------------------------------------------------------

    def write(self, data: bytes) -> int:
        mode = self._injector._arm(is_write=True)
        if mode == "torn":
            self._raw.write(bytes(data)[: self._injector.torn_length(len(data))])
            self._injector.crashed = True
            raise SimulatedCrashError("simulated crash mid-write (torn page)")
        if mode == "bitflip":
            buf = bytearray(data)
            if buf:
                byte, bit = self._injector.flip_position(len(buf))
                buf[byte] ^= 1 << bit
            return self._raw.write(bytes(buf))
        return self._raw.write(data)

    def truncate(self, size: Optional[int] = None) -> int:
        self._injector._arm(is_write=False)
        return self._raw.truncate(self._raw.tell() if size is None else size)

    def fsync(self) -> None:
        """Durability point; counted so crashes can land just before it."""
        self._injector._arm(is_write=False)
        os.fsync(self._raw.fileno())

    # -- non-mutating operations ----------------------------------------------------

    def read(self, n: int = -1) -> bytes:
        self._injector._check_dead()
        return self._raw.read(n)

    def seek(self, offset: int, whence: int = 0) -> int:
        self._injector._check_dead()
        return self._raw.seek(offset, whence)

    def tell(self) -> int:
        self._injector._check_dead()
        return self._raw.tell()

    def flush(self) -> None:
        self._injector._check_dead()
        self._raw.flush()

    def fileno(self) -> int:
        return self._raw.fileno()

    @property
    def closed(self) -> bool:
        return self._raw.closed

    def close(self) -> None:
        # Always allowed — even a "dead" process's descriptors get closed.
        self._raw.close()

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
