"""A durable pager: fixed-size binary page slots in a real file.

Where :class:`repro.storage.pager.Pager` simulates the disk with in-memory
objects, :class:`FilePager` writes every page as a struct-encoded image at
offset ``(pid + 1) * page_size`` of an ordinary file.  Reads decode the
image back into the node object — so a tree built over a FilePager can be
closed, the process restarted, and the tree reopened against the same
file.

The file begins with one header page holding the magic, the page size,
the allocation high-water mark, the free list and a small user-metadata
blob (index roots, entry counts — whatever the owner needs to reopen).

Because the tree code mutates fetched node objects in place, the FilePager
keeps an identity-preserving object cache: :meth:`get` hands out one live
object per page, and :meth:`sync`/:meth:`close` re-encode every cached
object back to its slot (a checkpoint-style write-back).

Crash safety (see also :mod:`repro.storage.wal`):

* mutations touch only memory; the file changes *exclusively* at
  checkpoints (:meth:`sync`), so an exception mid-operation never leaves a
  half-written tree on disk;
* a checkpoint first commits every changed slot image to the write-ahead
  log (fsync), then applies them in place (fsync), then resets the log —
  a crash at any single write leaves either the previous or the new
  checkpoint recoverable, never a mix;
* every slot — header included — carries a trailing CRC32
  (:func:`~repro.storage.codec.seal_page`); a torn or bit-flipped slot
  raises :class:`~repro.core.errors.PageCorruptionError` instead of
  returning wrong aggregates, and :meth:`verify` scrubs the whole file.

Concurrency: every public operation holds one internal re-entrant lock, so
a multi-reader caller (the :mod:`repro.service` query layer) can never
interleave a slot decode with another thread's checkpoint write-back.  The
lock serializes, it does not parallelize — one file, one writer at a time.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Set, Tuple

from ..core.errors import PageCorruptionError, PageNotFoundError, StorageError
from ..obs import trace as _trace
from ..obs.registry import get_registry
from .codec import BPlusNodeCodec, seal_page, unseal_page
from .layout import PAGE_CHECKSUM_BYTES
from .wal import HEADER_SLOT, WriteAheadLog, fsync_file

_MAGIC = b"REPROPG2"  # PG1 had neither slot checksums nor a WAL
_HEADER = struct.Struct("<8sII")  # magic, page_size, next_pid


def _default_opener(path: str, mode: str):
    return open(path, mode)


class ScrubReport(NamedTuple):
    """Outcome of one :meth:`FilePager.scrub` walk."""

    path: str
    #: Slots read and checksummed (header included).
    scanned: int
    #: Slots whose checksum or framing failed.
    corrupt: int
    #: The failing page ids (``"header"`` for the header slot), with the
    #: first error string for each — the operator's work list.
    errors: Tuple[Tuple[object, str], ...]

    @property
    def clean(self) -> bool:
        return self.corrupt == 0


class FilePager:
    """Durable drop-in for :class:`Pager`, backed by ``path``.

    The payload codec converts node objects to/from fixed-size images;
    :class:`~repro.storage.codec.BPlusNodeCodec` covers the aggregated
    B+-tree (scalar, sum+count and polynomial values).

    ``wal=True`` (the default) guards checkpoints with a write-ahead log
    at ``path + ".wal"``; ``opener`` lets tests inject faulty files
    (:mod:`repro.storage.faults`).
    """

    def __init__(
        self,
        path: str,
        codec: BPlusNodeCodec,
        page_size: int = 8192,
        create: bool = True,
        wal: bool = True,
        opener: Callable[[str, str], Any] = _default_opener,
    ) -> None:
        if page_size <= _HEADER.size + PAGE_CHECKSUM_BYTES:
            raise StorageError(f"page_size {page_size} too small for the header")
        self.path = path
        self.codec = codec
        self._opener = opener
        self._closed = False
        # Serializes every file/cache touch: a reader decoding a slot must
        # never interleave with another thread's checkpoint write-back.
        # Reentrant because set_meta/verify/close nest into sync().  The
        # cost is negligible next to struct codec work and real file I/O.
        self._lock = threading.RLock()
        registry = get_registry()
        self._m_disk_reads = registry.counter(
            "repro_pager_disk_reads", "slot images decoded from the page file"
        )
        self._m_checkpoints = registry.counter(
            "repro_pager_checkpoints", "sync() calls that wrote at least one slot"
        )
        self._m_slots_written = registry.counter(
            "repro_pager_slots_written", "slot images applied to the page file"
        )
        self._cache: Dict[int, Any] = {}
        # crc32 of the slot *body* as currently on disk; pids absent here
        # (or whose re-encoded body differs) are written at the next sync.
        self._slot_crc: Dict[int, int] = {}
        self._header_crc: Optional[int] = None
        # allocated with no payload and never put/synced: no slot on disk yet
        self._blank: Set[int] = set()
        self._wal: Optional[WriteAheadLog] = None
        wal_path = path + ".wal"
        exists = os.path.exists(path)
        if not exists and not create:
            raise StorageError(f"no page file at {path}")
        if exists:
            self._file = opener(path, "r+b")
            if wal and os.path.exists(wal_path):
                # Redo the last committed checkpoint (if any) *before*
                # trusting the header: a crash mid-apply may have torn it.
                self._wal = WriteAheadLog(wal_path, page_size, opener=opener)
                self._wal.recover_into(self._file)
            self._file.seek(0)
            fixed = self._file.read(_HEADER.size)
            if len(fixed) < _HEADER.size:
                raise StorageError(f"{path} is not a page file (truncated header)")
            magic, stored_size, next_pid = _HEADER.unpack(fixed)
            if magic != _MAGIC:
                raise StorageError(f"{path} is not a page file (bad magic)")
            if stored_size != page_size:
                raise StorageError(
                    f"{path} was created with page size {stored_size}, "
                    f"opened with {page_size}"
                )
            self.page_size = stored_size
            self._file.seek(0)
            slot = self._file.read(self.page_size)
            if len(slot) < self.page_size:
                raise StorageError(f"{path} is not a page file (truncated header)")
            body = unseal_page(slot, "header")
            self._header_crc = zlib.crc32(body)
            self._next_pid = next_pid
            self._free, self.user_meta = self._parse_header_lists(body)
        else:
            self.page_size = page_size
            self._next_pid = 0
            self._free: List[int] = []
            self.user_meta: bytes = b""
            self._file = opener(path, "w+b")
            # Initial header: plain write + fsync.  Creation itself is not
            # crash-atomic (there is no previous state to preserve); every
            # later transition is WAL-protected.
            self._apply_slot(HEADER_SLOT, self._sealed_header())
            fsync_file(self._file)
            if wal and os.path.exists(wal_path):
                os.remove(wal_path)  # stale log of a deleted page file
        if wal and self._wal is None:
            self._wal = WriteAheadLog(wal_path, self.page_size, opener=opener)

    # -- header, free list and metadata -----------------------------------------------

    @property
    def _body_size(self) -> int:
        """Slot bytes available to content (the CRC32 trailer is reserved)."""
        return self.page_size - PAGE_CHECKSUM_BYTES

    def _header_body(self) -> bytes:
        header = _HEADER.pack(_MAGIC, self.page_size, self._next_pid)
        free_blob = struct.pack(f"<I{len(self._free)}I", len(self._free), *self._free)
        meta_blob = struct.pack("<I", len(self.user_meta)) + self.user_meta
        image = header + free_blob + meta_blob
        if len(image) > self._body_size:
            raise StorageError("free list / metadata overflowed the header page")
        return image

    def _sealed_header(self) -> bytes:
        return seal_page(self._header_body(), self.page_size)

    def _check_header_fits(self, extra_free: int = 0, meta_len: Optional[int] = None) -> None:
        """Eagerly reject a mutation that could not be checkpointed."""
        meta = len(self.user_meta) if meta_len is None else meta_len
        needed = _HEADER.size + 4 + 4 * (len(self._free) + extra_free) + 4 + meta
        if needed > self._body_size:
            raise StorageError("free list / metadata overflowed the header page")

    def _parse_header_lists(self, body: bytes):
        offset = _HEADER.size
        (count,) = struct.unpack_from("<I", body, offset)
        offset += 4
        free = list(struct.unpack_from(f"<{count}I", body, offset)) if count else []
        offset += 4 * count
        (meta_len,) = struct.unpack_from("<I", body, offset)
        offset += 4
        meta = body[offset : offset + meta_len] if meta_len else b""
        return free, meta

    def set_meta(self, blob: bytes) -> None:
        """Persist a small user-metadata blob in the header page.

        Durable on return: routed through the same WAL-commit + fsync
        discipline as :meth:`sync` (which it implies — the metadata must
        never describe pages newer than what is on disk).
        """
        with self._lock:
            self._check_open()
            self._check_header_fits(meta_len=len(blob))
            self.user_meta = bytes(blob)
            self.sync()

    def _offset(self, pid: int) -> int:
        return (pid + 1) * self.page_size  # slot 0 is the header

    # -- pager protocol ---------------------------------------------------------------

    def allocate(self, payload: Any = None) -> int:
        """Reserve a page slot; the payload (if given) is cached for write-back."""
        with self._lock:
            self._check_open()
            pid = self._free.pop() if self._free else self._next_pid
            if pid == self._next_pid:
                self._next_pid += 1
            self._slot_crc.pop(pid, None)
            if payload is not None:
                self._cache[pid] = payload
                self._blank.discard(pid)
            else:
                self._blank.add(pid)
            return pid

    def put(self, pid: int, payload: Any) -> None:
        """Cache the payload; its image reaches the file at the next sync."""
        with self._lock:
            self._check_open()
            self._check_live(pid)
            self._cache[pid] = payload
            self._blank.discard(pid)

    def get(self, pid: int) -> Any:
        """Return the live node object for a page (decoding it on first touch)."""
        with self._lock:
            self._check_open()
            self._check_live(pid)
            if pid in self._cache:
                return self._cache[pid]
            self._file.seek(self._offset(pid))
            data = self._file.read(self.page_size)
            if len(data) < self.page_size:
                raise PageNotFoundError(f"page {pid} truncated on disk")
            body = unseal_page(data, pid)
            payload = self.codec.decode(body, pid)
            self._cache[pid] = payload
            self._slot_crc[pid] = zlib.crc32(body)
            self._m_disk_reads.inc()
            return payload

    def free(self, pid: int) -> None:
        """Return a slot to the free list."""
        with self._lock:
            self._check_open()
            self._check_live(pid)
            self._check_header_fits(extra_free=1)
            self._cache.pop(pid, None)
            self._slot_crc.pop(pid, None)
            self._blank.discard(pid)
            self._free.append(pid)

    def _check_live(self, pid: int) -> None:
        if pid < 0 or pid >= self._next_pid or pid in self._free:
            raise PageNotFoundError(f"access to unknown page {pid}")

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"pager for {self.path} is closed")

    def __contains__(self, pid: int) -> bool:
        return 0 <= pid < self._next_pid and pid not in self._free

    # -- size reporting -------------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Live pages (excluding the header slot)."""
        return self._next_pid - len(self._free)

    @property
    def size_bytes(self) -> int:
        """Bytes of live pages."""
        return self.num_pages * self.page_size

    @property
    def allocations_ever(self) -> int:
        return self._next_pid

    def page_ids(self):
        return (pid for pid in range(self._next_pid) if pid not in self._free)

    def payload_or_none(self, pid: int):
        try:
            return self.get(pid)
        except PageNotFoundError:
            return None

    # -- checkpointing -----------------------------------------------------------------------

    def _collect_batch(self) -> List[Tuple[int, bytes]]:
        """Sealed images of every slot whose on-disk copy is stale."""
        batch: List[Tuple[int, bytes]] = []
        for pid, payload in self._cache.items():
            body = self.codec.encode(payload, self._body_size)
            if self._slot_crc.get(pid) != zlib.crc32(body):
                batch.append((pid, seal_page(body, self.page_size)))
        for pid in self._blank:
            if pid not in self._cache:
                # Materialize the reserved slot so the file stays dense.
                batch.append((pid, seal_page(b"", self.page_size)))
        header_body = self._header_body()
        if self._header_crc != zlib.crc32(header_body):
            batch.append((HEADER_SLOT, seal_page(header_body, self.page_size)))
        return batch

    def _apply_slot(self, pid: int, image: bytes) -> None:
        self._file.seek(0 if pid == HEADER_SLOT else self._offset(pid))
        self._file.write(image)

    def sync(self) -> None:
        """Checkpoint: WAL-commit every changed slot image, apply, fsync.

        The durability point is the WAL commit — after it returns, a crash
        anywhere (including mid-apply) recovers to *this* checkpoint; before
        it, recovery yields the previous one.  No-op when nothing changed.
        """
        with self._lock:
            self._check_open()
            batch = self._collect_batch()
            if not batch:
                return
            self._m_checkpoints.inc()
            self._m_slots_written.inc(len(batch))
            tracer = _trace._ACTIVE
            if tracer is not None:
                tracer.event("pager_sync", path=self.path, slots=len(batch))
            if self._wal is not None:
                self._wal.begin()
                for pid, image in batch:
                    self._wal.append_page(pid, image)
                self._wal.commit()
            for pid, image in batch:
                self._apply_slot(pid, image)
            fsync_file(self._file)
            if self._wal is not None:
                self._wal.mark_applied()
            for pid, image in batch:
                body_crc = zlib.crc32(image[:-PAGE_CHECKSUM_BYTES])
                if pid == HEADER_SLOT:
                    self._header_crc = body_crc
                else:
                    self._slot_crc[pid] = body_crc
            self._blank.clear()

    def verify(self) -> int:
        """Scrub walk: checkpoint, then re-read and checksum every live slot.

        Returns the number of slots verified (header included); raises
        :class:`PageCorruptionError` at the first torn or bit-rotted slot.
        """
        with self._lock:
            self.sync()
            self._file.seek(0)
            data = self._file.read(self.page_size)
            if len(data) < self.page_size:
                raise PageCorruptionError("header slot truncated on disk")
            unseal_page(data, "header")
            verified = 1
            for pid in self.page_ids():
                self._file.seek(self._offset(pid))
                data = self._file.read(self.page_size)
                if len(data) < self.page_size:
                    raise PageCorruptionError(f"page {pid} truncated on disk")
                unseal_page(data, pid)
                verified += 1
            return verified

    def scrub(self) -> ScrubReport:
        """Operational scrub: walk every slot, report damage, never raise.

        Where :meth:`verify` stops at the first bad slot (the fail-fast
        contract serving wants), a scrub is an *inventory*: it reads and
        checksums every slot — header included — and returns a
        :class:`ScrubReport` listing all the corrupt ones, so an operator
        sees the full extent of the damage in one pass before deciding on
        a checkpoint restore.  The walk itself cannot make anything
        worse: it checkpoints pending changes first (same as ``verify``)
        and then only reads.
        """
        with self._lock:
            self.sync()
            errors: List[Tuple[object, str]] = []
            scanned = 0
            self._file.seek(0)
            data = self._file.read(self.page_size)
            scanned += 1
            if len(data) < self.page_size:
                errors.append(("header", "header slot truncated on disk"))
            else:
                try:
                    unseal_page(data, "header")
                except PageCorruptionError as exc:
                    errors.append(("header", str(exc)))
            for pid in self.page_ids():
                self._file.seek(self._offset(pid))
                data = self._file.read(self.page_size)
                scanned += 1
                if len(data) < self.page_size:
                    errors.append((pid, f"page {pid} truncated on disk"))
                    continue
                try:
                    unseal_page(data, pid)
                except PageCorruptionError as exc:
                    errors.append((pid, str(exc)))
            return ScrubReport(self.path, scanned, len(errors), tuple(errors))

    # -- lifecycle -----------------------------------------------------------------------------

    def close(self, checkpoint: bool = True) -> None:
        """Checkpoint (unless told otherwise) and close the file; idempotent."""
        with self._lock:
            if self._closed:
                return
            try:
                if checkpoint:
                    self.sync()
            finally:
                self._closed = True
                self._file.close()
                if self._wal is not None:
                    self._wal.close()
                self._cache.clear()
                self._slot_crc.clear()
                self._blank.clear()

    def __enter__(self) -> "FilePager":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        # On an exception, skip the checkpoint: a failed operation must not
        # overwrite good on-disk state with a half-mutated cache.
        self.close(checkpoint=exc_type is None)
