"""A durable pager: fixed-size binary page slots in a real file.

Where :class:`repro.storage.pager.Pager` simulates the disk with in-memory
objects, :class:`FilePager` writes every page as a struct-encoded image at
offset ``pid * page_size`` of an ordinary file.  Reads decode the image
back into the node object — so a tree built over a FilePager can be
closed, the process restarted, and the tree reopened against the same
file.

The file begins with one header page holding the magic, the page size,
the allocation high-water mark, the free list and a small user-metadata
blob (index roots, entry counts — whatever the owner needs to reopen).

Because the tree code mutates fetched node objects in place, the FilePager
keeps an identity-preserving object cache: :meth:`get` hands out one live
object per page, and :meth:`sync`/:meth:`close` re-encode every cached
object back to its slot (a checkpoint-style write-back).
"""

from __future__ import annotations

import os
import struct
from typing import Any, Dict, List

from ..core.errors import PageNotFoundError, StorageError
from .codec import BPlusNodeCodec

_MAGIC = b"REPROPG1"
_HEADER = struct.Struct("<8sII")  # magic, page_size, next_pid


class FilePager:
    """Durable drop-in for :class:`Pager`, backed by ``path``.

    The payload codec converts node objects to/from fixed-size images;
    :class:`~repro.storage.codec.BPlusNodeCodec` covers the aggregated
    B+-tree (scalar, sum+count and polynomial values).
    """

    def __init__(
        self,
        path: str,
        codec: BPlusNodeCodec,
        page_size: int = 8192,
        create: bool = True,
    ) -> None:
        if page_size <= _HEADER.size:
            raise StorageError(f"page_size {page_size} too small for the header")
        self.path = path
        self.codec = codec
        exists = os.path.exists(path)
        if not exists and not create:
            raise StorageError(f"no page file at {path}")
        mode = "r+b" if exists else "w+b"
        self._file = open(path, mode)
        self._cache: Dict[int, Any] = {}
        if exists:
            header = self._file.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise StorageError(f"{path} is not a page file (truncated header)")
            magic, stored_size, next_pid = _HEADER.unpack(header)
            if magic != _MAGIC:
                raise StorageError(f"{path} is not a page file (bad magic)")
            if stored_size != page_size:
                raise StorageError(
                    f"{path} was created with page size {stored_size}, "
                    f"opened with {page_size}"
                )
            self.page_size = stored_size
            self._next_pid = next_pid
            self._free, self.user_meta = self._read_header_lists()
        else:
            self.page_size = page_size
            self._next_pid = 0
            self._free = []
            self.user_meta: bytes = b""
            self._write_header()

    # -- header, free list and metadata -----------------------------------------------

    def _write_header(self) -> None:
        self._file.seek(0)
        header = _HEADER.pack(_MAGIC, self.page_size, self._next_pid)
        free_blob = struct.pack(f"<I{len(self._free)}I", len(self._free), *self._free)
        meta_blob = struct.pack("<I", len(self.user_meta)) + self.user_meta
        image = header + free_blob + meta_blob
        if len(image) > self.page_size:
            raise StorageError("free list / metadata overflowed the header page")
        self._file.write(image + b"\x00" * (self.page_size - len(image)))

    def _read_header_lists(self):
        self._file.seek(_HEADER.size)
        (count,) = struct.unpack("<I", self._file.read(4))
        free = (
            list(struct.unpack(f"<{count}I", self._file.read(4 * count)))
            if count
            else []
        )
        (meta_len,) = struct.unpack("<I", self._file.read(4))
        meta = self._file.read(meta_len) if meta_len else b""
        return free, meta

    def set_meta(self, blob: bytes) -> None:
        """Persist a small user-metadata blob in the header page."""
        self.user_meta = bytes(blob)
        self._write_header()

    def _offset(self, pid: int) -> int:
        return (pid + 1) * self.page_size  # slot 0 is the header

    # -- pager protocol ---------------------------------------------------------------

    def allocate(self, payload: Any = None) -> int:
        """Reserve a page slot; the payload (if given) is cached and written."""
        pid = self._free.pop() if self._free else self._next_pid
        if pid == self._next_pid:
            self._next_pid += 1
        self._write_header()
        self._file.seek(self._offset(pid))
        if payload is not None:
            self._cache[pid] = payload
            self._file.write(self.codec.encode(payload, self.page_size))
        else:
            self._file.write(b"\x00" * self.page_size)
        return pid

    def put(self, pid: int, payload: Any) -> None:
        """Cache the payload and write its image through to the file."""
        self._check_live(pid)
        self._cache[pid] = payload
        self._file.seek(self._offset(pid))
        self._file.write(self.codec.encode(payload, self.page_size))

    def get(self, pid: int) -> Any:
        """Return the live node object for a page (decoding it on first touch)."""
        self._check_live(pid)
        if pid in self._cache:
            return self._cache[pid]
        self._file.seek(self._offset(pid))
        data = self._file.read(self.page_size)
        if len(data) < self.page_size:
            raise PageNotFoundError(f"page {pid} truncated on disk")
        payload = self.codec.decode(data, pid)
        self._cache[pid] = payload
        return payload

    def free(self, pid: int) -> None:
        """Return a slot to the free list."""
        self._check_live(pid)
        self._cache.pop(pid, None)
        self._free.append(pid)
        self._write_header()

    def _check_live(self, pid: int) -> None:
        if pid < 0 or pid >= self._next_pid or pid in self._free:
            raise PageNotFoundError(f"access to unknown page {pid}")

    def __contains__(self, pid: int) -> bool:
        return 0 <= pid < self._next_pid and pid not in self._free

    # -- size reporting -------------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Live pages (excluding the header slot)."""
        return self._next_pid - len(self._free)

    @property
    def size_bytes(self) -> int:
        """Bytes of live pages."""
        return self.num_pages * self.page_size

    @property
    def allocations_ever(self) -> int:
        return self._next_pid

    def page_ids(self):
        return (pid for pid in range(self._next_pid) if pid not in self._free)

    def payload_or_none(self, pid: int):
        try:
            return self.get(pid)
        except PageNotFoundError:
            return None

    # -- lifecycle -----------------------------------------------------------------------------

    def sync(self) -> None:
        """Checkpoint: re-encode every cached object, flush and fsync."""
        for pid, payload in self._cache.items():
            self._file.seek(self._offset(pid))
            self._file.write(self.codec.encode(payload, self.page_size))
        self._write_header()
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        """Checkpoint and close the file."""
        self.sync()
        self._file.close()
        self._cache.clear()

    def __enter__(self) -> "FilePager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
