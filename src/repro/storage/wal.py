"""Write-ahead log for the durable pager's atomic checkpoints.

:class:`~repro.storage.filepager.FilePager` never overwrites page slots
directly.  A checkpoint first appends every changed slot image to this log
and commits it (flush + fsync), and only then applies the images to the
page file in place.  A crash at *any* write therefore leaves one of two
recoverable states:

* no commit record on disk — the page file was never touched; the torn log
  tail is discarded and the previous checkpoint survives intact;
* a committed batch on disk — the page file may be half-applied, but the
  log holds every image of the batch; :meth:`WriteAheadLog.recover_into`
  replays it (redo) and the new checkpoint survives intact.

On-disk format::

    file header:  8s magic "REPROWAL" | u32 page_size
    record:       u8 kind | u32 pid | u32 length | u32 crc | payload
    kinds:        1 = page image (pid 0xFFFFFFFF is the pager header slot)
                  2 = commit (empty payload)

The record CRC32 covers the packed (kind, pid, length) fields plus the
payload, so a torn record, a torn length field, or a bit flip all truncate
the scan instead of replaying garbage.  Payloads are full sealed slot
images (they carry their own trailing page CRC as well).
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Callable, List, Tuple

from ..core.errors import WalError
from ..obs import trace as _trace
from ..obs.registry import get_registry

_WAL_MAGIC = b"REPROWAL"
_FILE_HEADER = struct.Struct("<8sI")  # magic, page_size
_REC_HEADER = struct.Struct("<BIII")  # kind, pid, length, crc
_REC_BODY = struct.Struct("<BII")  # the crc-covered prefix of the header

REC_PAGE = 1
REC_COMMIT = 2

#: wire pid of the pager's header slot (offset 0 of the page file)
HEADER_SLOT = 0xFFFFFFFF


def fsync_file(fileobj) -> None:
    """Flush and fsync a file object; honors a file-level ``fsync`` hook.

    Fault-injection wrappers (:mod:`repro.storage.faults`) expose their own
    ``fsync`` method so simulated crashes can land between a write and its
    durability point; plain files fall back to :func:`os.fsync`.
    """
    fileobj.flush()
    fsync = getattr(fileobj, "fsync", None)
    if fsync is not None:
        fsync()
    else:
        os.fsync(fileobj.fileno())


def _default_opener(path: str, mode: str):
    return open(path, mode)


class WriteAheadLog:
    """Redo log over ``path`` guarding one page file's checkpoints.

    The log holds at most the batches of the current (possibly retried)
    checkpoint: :meth:`begin` truncates any *applied or uncommitted* junk,
    :meth:`commit` makes the batch durable, and :meth:`mark_applied`
    truncates back to the file header once the page file caught up.  If a
    committed batch could not be applied (an I/O error mid-checkpoint), the
    next :meth:`begin` appends *after* it — replay applies batches in
    order, so the newest committed state always wins.
    """

    def __init__(
        self,
        path: str,
        page_size: int,
        opener: Callable[[str, str], object] = _default_opener,
    ) -> None:
        self.path = path
        self.page_size = page_size
        registry = get_registry()
        self._m_commits = registry.counter(
            "repro_wal_commits", "WAL batches committed (made durable)"
        )
        self._m_pages = registry.counter("repro_wal_pages", "slot images appended to the WAL")
        self._m_recovered = registry.counter(
            "repro_wal_recovered_slots", "slot images replayed during recovery"
        )
        exists = os.path.exists(path)
        self._file = opener(path, "r+b" if exists else "w+b")
        # Whether a committed batch is on disk but not yet applied.
        self._pending = False
        # File offset just past the last commit record — the only position
        # new records may be appended at.  Appending past a torn tail
        # instead would leave the new batch unreachable: _scan stops at
        # the tear, so a later recovery would silently drop the commit.
        self._committed_end = _FILE_HEADER.size
        if exists:
            header = self._file.read(_FILE_HEADER.size)
            if len(header) < _FILE_HEADER.size:
                # A crash during log creation tore the file header.  The
                # header is written (and fsynced) before any record can be,
                # so a short file provably holds no commits: re-initialize.
                self._initialize()
            else:
                magic, stored_size = _FILE_HEADER.unpack(header)
                if magic != _WAL_MAGIC:
                    raise WalError(f"{path} is not a WAL file (bad magic)")
                if stored_size != page_size:
                    raise WalError(f"{path} logs page size {stored_size}, expected {page_size}")
                self._pending = bool(self._scan())
        else:
            self._initialize()

    def _initialize(self) -> None:
        self._file.seek(0)
        self._file.truncate()
        self._file.write(_FILE_HEADER.pack(_WAL_MAGIC, self.page_size))
        fsync_file(self._file)
        self._committed_end = _FILE_HEADER.size

    # -- writing ----------------------------------------------------------------------

    def begin(self) -> None:
        """Start a batch after the last commit, truncating everything else.

        Without a pending batch that means right after the file header;
        with one, right after its commit record — either way any torn or
        uncommitted tail (the debris of a crash mid-batch) is cut off, so
        the records about to be written are exactly where :meth:`_scan`
        will look for them.
        """
        self._file.seek(self._committed_end if self._pending else _FILE_HEADER.size)
        self._file.truncate()

    def append_page(self, pid: int, slot_image: bytes) -> None:
        """Append one slot image (``HEADER_SLOT`` for the pager header)."""
        if len(slot_image) != self.page_size:
            raise WalError(
                f"WAL payload is {len(slot_image)} bytes, "
                f"expected a full {self.page_size}-byte slot"
            )
        self._append(REC_PAGE, pid, slot_image)
        self._m_pages.inc()

    def commit(self) -> None:
        """Make the batch durable: append the commit record, flush, fsync."""
        self._append(REC_COMMIT, 0, b"")
        fsync_file(self._file)
        self._committed_end = self._file.tell()
        self._pending = True
        self._m_commits.inc()
        tracer = _trace._ACTIVE
        if tracer is not None:
            tracer.event("wal_commit", path=self.path)

    def mark_applied(self) -> None:
        """The page file caught up: truncate back to the file header."""
        self._file.seek(_FILE_HEADER.size)
        self._file.truncate()
        fsync_file(self._file)
        self._pending = False
        self._committed_end = _FILE_HEADER.size

    def _append(self, kind: int, pid: int, payload: bytes) -> None:
        crc = zlib.crc32(_REC_BODY.pack(kind, pid, len(payload)) + payload)
        self._file.write(_REC_HEADER.pack(kind, pid, len(payload), crc) + payload)

    # -- recovery ---------------------------------------------------------------------

    def _scan(self) -> List[List[Tuple[int, bytes]]]:
        """Committed batches on disk, in commit order; torn tails discarded."""
        self._file.seek(_FILE_HEADER.size)
        batches: List[List[Tuple[int, bytes]]] = []
        pending: List[Tuple[int, bytes]] = []
        while True:
            header = self._file.read(_REC_HEADER.size)
            if len(header) < _REC_HEADER.size:
                break  # clean end or torn record header
            kind, pid, length, crc = _REC_HEADER.unpack(header)
            if kind not in (REC_PAGE, REC_COMMIT) or length > self.page_size:
                break  # garbage — stop before replaying it
            payload = self._file.read(length)
            if len(payload) < length:
                break  # torn payload
            if zlib.crc32(_REC_BODY.pack(kind, pid, length) + payload) != crc:
                break  # bit rot / torn write inside the record
            if kind == REC_COMMIT:
                batches.append(pending)
                pending = []
                self._committed_end = self._file.tell()
            else:
                pending.append((pid, payload))
        return batches

    def recover_into(self, page_file) -> int:
        """Redo every committed batch into ``page_file``; return slots written.

        Applies batches in commit order, fsyncs the page file, then resets
        the log.  Uncommitted tails are discarded untouched (the page file
        was never written for them).
        """
        batches = self._scan()
        applied = 0
        for batch in batches:
            for pid, image in batch:
                offset = 0 if pid == HEADER_SLOT else (pid + 1) * self.page_size
                page_file.seek(offset)
                page_file.write(image)
                applied += 1
        if applied:
            fsync_file(page_file)
            self._m_recovered.inc(applied)
        if applied or os.fstat(self._file.fileno()).st_size > _FILE_HEADER.size:
            self.mark_applied()
        else:
            self._pending = False
        return applied

    # -- lifecycle --------------------------------------------------------------------

    @property
    def pending(self) -> bool:
        """True when a committed batch awaits application."""
        return self._pending

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
