"""Record byte layouts and page-capacity arithmetic.

Fan-out (the paper's ``B``) drives every complexity term in Table 1, so the
capacities here are derived from explicit per-record byte sizes rather than
picked ad hoc:

==========================  =======================================================
record                      layout
==========================  =======================================================
coordinate                  8 bytes (float64)
page id                     4 bytes
border handle               8 bytes (page id + offset of a slab allocation)
point entry                 ``8 * dims + value`` bytes
B+-tree internal entry      separator (8) + child pid (4) + child aggregate
k-d-B / BA index record     box (``16 * dims``) + child pid (4) + subtotal +
                            ``dims`` border handles
R-tree leaf entry           box (``16 * dims``) + value (8)
R-tree internal entry       box (``16 * dims``) + child pid (4)
aR-tree internal entry      R-tree internal entry + aggregate
==========================  =======================================================

Polynomial-valued indices pass a larger ``value_bytes`` (the coefficient
tuple footprint), which shrinks fan-out and grows the index — reproducing
the degree-0 vs degree-2 gap of Figure 9c.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

from ..core.errors import StorageError

COORD_BYTES = 8
PAGE_ID_BYTES = 4
BORDER_HANDLE_BYTES = 8
SCALAR_VALUE_BYTES = 8

#: Trailing CRC32 each *durable* page slot carries (see storage/codec.py).
#: The simulated pager stores objects, so simulated capacities ignore it;
#: durable capacities must budget ``page_size - PAGE_CHECKSUM_BYTES``.
PAGE_CHECKSUM_BYTES = 4


def polynomial_value_bytes(dims: int, degree: int) -> int:
    """Worst-case coefficient-tuple footprint for total degree ``degree``.

    A polynomial in ``dims`` variables with total degree at most ``degree``
    has ``C(degree + dims, dims)`` coefficients; each stored term costs
    8 bytes plus one exponent byte per variable, plus an 8-byte header
    (matching :meth:`repro.core.polynomial.Polynomial.nbytes`).
    """
    n_coeffs = comb(degree + dims, dims)
    return 8 + n_coeffs * (8 + dims)


@dataclass(frozen=True)
class Layout:
    """Capacity calculator for one page size and one aggregate-value width."""

    page_size: int = 8192
    value_bytes: int = SCALAR_VALUE_BYTES

    def _capacity(self, record_bytes: int) -> int:
        cap = self.page_size // record_bytes
        if cap < 2:
            raise StorageError(
                f"page_size {self.page_size} holds fewer than 2 records of "
                f"{record_bytes} bytes; increase the page size"
            )
        return cap

    # -- point storage ---------------------------------------------------------

    def point_entry_bytes(self, dims: int) -> int:
        """A full point with its aggregate value."""
        return COORD_BYTES * dims + self.value_bytes

    def point_leaf_capacity(self, dims: int) -> int:
        """Points per leaf page (ECDF-B main branch, k-d-B/BA leaves)."""
        return self._capacity(self.point_entry_bytes(dims))

    # -- aggregated B+-tree -------------------------------------------------------

    def bptree_leaf_capacity(self) -> int:
        """(key, value) entries per 1-d leaf page."""
        return self._capacity(COORD_BYTES + self.value_bytes)

    def bptree_internal_capacity(self) -> int:
        """Children per 1-d internal page (separator + pid + per-child aggregate)."""
        return self._capacity(COORD_BYTES + PAGE_ID_BYTES + self.value_bytes)

    # -- ECDF-B-tree main branch ------------------------------------------------------

    def ecdf_internal_capacity(self) -> int:
        """Children per ECDF-B internal page.

        Each child carries a separator, a child pid and a border handle (the
        border's points live in their own pages / slabs).
        """
        return self._capacity(COORD_BYTES + PAGE_ID_BYTES + BORDER_HANDLE_BYTES)

    # -- k-d-B-tree / BA-tree -------------------------------------------------------------

    def kdb_index_record_bytes(self, dims: int) -> int:
        """One BA-tree index record: box + child + subtotal + d border handles."""
        return (
            2 * COORD_BYTES * dims
            + PAGE_ID_BYTES
            + self.value_bytes
            + BORDER_HANDLE_BYTES * dims
        )

    def kdb_index_capacity(self, dims: int) -> int:
        """Index records per k-d-B/BA index page."""
        return self._capacity(self.kdb_index_record_bytes(dims))

    # -- R-tree family ------------------------------------------------------------------------

    def rtree_leaf_capacity(self, dims: int) -> int:
        """Object entries (MBR + value) per R-tree leaf page."""
        return self._capacity(2 * COORD_BYTES * dims + SCALAR_VALUE_BYTES)

    def rtree_internal_capacity(self, dims: int, aggregated: bool) -> int:
        """Child entries per R-tree internal page; aR entries also carry an aggregate."""
        record = 2 * COORD_BYTES * dims + PAGE_ID_BYTES
        if aggregated:
            record += self.value_bytes
        return self._capacity(record)

    # -- slab-resident borders ----------------------------------------------------------------

    def border_entry_bytes(self, key_dims: int) -> int:
        """One entry of an array border: projected point + value."""
        return COORD_BYTES * key_dims + self.value_bytes

    def with_value_bytes(self, value_bytes: int) -> "Layout":
        """A copy of this layout for a different aggregate-value width."""
        return Layout(page_size=self.page_size, value_bytes=value_bytes)
