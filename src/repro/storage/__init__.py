"""Disk substrate: simulated pager, LRU buffering, slab packing, I/O stats.

:class:`StorageContext` bundles one simulated disk with one buffer pool and
one slab allocator.  Index structures that should share a buffer — the
paper runs the four dominance-sum trees of a simple box-sum index against a
single 10 MB buffer — are simply constructed over the same context.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import StorageError
from .buffer import BufferPool, PathBuffer
from .faults import CrashPoint, FaultInjector, FaultyFile, SimulatedCrashError
from .layout import PAGE_CHECKSUM_BYTES, Layout, polynomial_value_bytes
from .pager import NO_PAGE, Pager
from .slab import SlabAllocator, SlabHandle
from .stats import CostModel, IOCounter, Stopwatch
from .wal import WriteAheadLog

__all__ = [
    "BufferPool",
    "PathBuffer",
    "CrashPoint",
    "FaultInjector",
    "FaultyFile",
    "FilePager",
    "ScrubReport",
    "SimulatedCrashError",
    "Layout",
    "PAGE_CHECKSUM_BYTES",
    "polynomial_value_bytes",
    "Pager",
    "NO_PAGE",
    "SlabAllocator",
    "SlabHandle",
    "CostModel",
    "IOCounter",
    "Stopwatch",
    "StorageContext",
    "WriteAheadLog",
]


def __getattr__(name: str):
    # FilePager's codec decodes B+-tree nodes, and the bptree package
    # imports StorageContext from here — so the durable pager must load
    # lazily to keep this package's import acyclic.
    if name in ("FilePager", "ScrubReport"):
        from . import filepager

        return getattr(filepager, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class StorageContext:
    """One simulated disk + buffer pool + slab allocator + I/O counter.

    Parameters mirror the paper's setup: ``page_size`` defaults to 8 KB and
    ``buffer_pages`` to 1280 (10 MB / 8 KB).  Pass ``buffer_pages=None``
    for an unbounded buffer (useful in unit tests where eviction noise is
    unwanted).
    """

    def __init__(
        self,
        page_size: int = 8192,
        buffer_pages: Optional[int] = 1280,
        value_bytes: int = 8,
        pager: object = None,
    ) -> None:
        self.counter = IOCounter()
        self.pager = pager if pager is not None else Pager(page_size=page_size)
        if self.pager.page_size != page_size:
            raise StorageError(
                f"pager page size {self.pager.page_size} != context page size {page_size}"
            )
        self.buffer = BufferPool(capacity_pages=buffer_pages, counter=self.counter)
        self.slab = SlabAllocator(self.pager, self.buffer)
        self.layout = Layout(page_size=page_size, value_bytes=value_bytes)

    @property
    def page_size(self) -> int:
        """Byte size of one logical page."""
        return self.pager.page_size

    @property
    def num_pages(self) -> int:
        """Live pages on the simulated disk."""
        return self.pager.num_pages

    @property
    def size_bytes(self) -> int:
        """Index footprint in bytes (live pages × page size)."""
        return self.pager.size_bytes

    @property
    def size_mb(self) -> float:
        """Index footprint in MB — the unit of Figure 9a."""
        return self.size_bytes / (1024.0 * 1024.0)

    def reset_stats(self) -> None:
        """Zero the I/O counters (between build and query phases)."""
        self.counter.reset()

    def watch(self, registry=None, **labels: str):
        """Publish this context's I/O counter and footprint gauges.

        Delegates to :func:`repro.obs.watch_storage`; returns the registered
        collectors so callers can unregister them later.
        """
        from ..obs.registry import watch_storage

        return watch_storage(self, registry=registry, **labels)

    def make_thread_safe(self) -> None:
        """Prepare this context for concurrent readers (idempotent).

        Switches the buffer pool to locked mode (see
        :meth:`BufferPool.make_thread_safe`); a durable
        :class:`~repro.storage.filepager.FilePager` is internally locked
        already.  Called automatically by :class:`repro.service.QueryService`.
        """
        self.buffer.make_thread_safe()

    def cold_cache(self) -> None:
        """Empty the buffer pool so the next accesses are all misses."""
        self.buffer.clear()

    def with_layout(self, value_bytes: int) -> Layout:
        """A layout over this context's page size for a wider value type."""
        return self.layout.with_value_bytes(value_bytes)
