"""The simulated disk: a store of fixed-size logical pages.

Every tree node and border slab in this package lives on exactly one logical
page.  The paper's experiments ran against a real disk with 8 KB pages; here
a page is an entry in an in-memory table, and the *I/O cost* of touching it
is accounted by the buffer pool (see :mod:`repro.storage.buffer`).  This
substitution keeps the paper's metrics — page counts and page I/Os — exact
while staying fast enough for pure Python.

For durability demonstrations the page table can be round-tripped through a
pickle image on disk (:meth:`Pager.save` / :meth:`Pager.load`); indexes
reopened from such an image answer queries identically.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Iterator, Optional

from ..core.errors import PageNotFoundError, StorageError

#: Sentinel page id meaning "no page" (e.g. a leaf's missing child pointer).
NO_PAGE = -1


class Pager:
    """Allocates logical pages and maps page ids to their payloads.

    Payloads are arbitrary Python objects (tree nodes, slab directories).
    The pager does not enforce byte budgets itself — each structure sizes its
    nodes against :class:`repro.storage.layout.Layout` capacities before
    writing — but it is the single source of truth for how many pages exist,
    which is what index-size measurements read.
    """

    def __init__(self, page_size: int = 8192) -> None:
        if page_size <= 0:
            raise StorageError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self._pages: Dict[int, Any] = {}
        self._next_pid = 0
        self._freed = 0

    # -- allocation ----------------------------------------------------------

    def allocate(self, payload: Any = None) -> int:
        """Create a new page and return its id."""
        pid = self._next_pid
        self._next_pid += 1
        self._pages[pid] = payload
        return pid

    def free(self, pid: int) -> None:
        """Release a page.  Accessing it afterwards raises."""
        if pid not in self._pages:
            raise PageNotFoundError(f"free of unknown page {pid}")
        del self._pages[pid]
        self._freed += 1

    # -- payload access ---------------------------------------------------------

    def get(self, pid: int) -> Any:
        """Fetch a page's payload (no I/O accounting — that's the buffer's job)."""
        try:
            return self._pages[pid]
        except KeyError:
            raise PageNotFoundError(f"read of unknown page {pid}") from None

    def put(self, pid: int, payload: Any) -> None:
        """Replace a page's payload."""
        if pid not in self._pages:
            raise PageNotFoundError(f"write to unknown page {pid}")
        self._pages[pid] = payload

    def __contains__(self, pid: int) -> bool:
        return pid in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def page_ids(self) -> Iterator[int]:
        """Iterate over the ids of all live pages."""
        return iter(self._pages)

    # -- size reporting -----------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Number of live pages."""
        return len(self._pages)

    @property
    def size_bytes(self) -> int:
        """Total size of the simulated disk in bytes (live pages × page size)."""
        return len(self._pages) * self.page_size

    @property
    def allocations_ever(self) -> int:
        """Total pages ever allocated, including since-freed ones."""
        return self._next_pid

    # -- durability ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist the full page table as a pickle image."""
        with open(path, "wb") as f:
            pickle.dump(
                {"page_size": self.page_size, "pages": self._pages, "next_pid": self._next_pid},
                f,
            )

    @classmethod
    def load(cls, path: str) -> "Pager":
        """Reopen a pager from a pickle image written by :meth:`save`."""
        with open(path, "rb") as f:
            image = pickle.load(f)
        pager = cls(page_size=image["page_size"])
        pager._pages = image["pages"]
        pager._next_pid = image["next_pid"]
        return pager

    def payload_or_none(self, pid: int) -> Optional[Any]:
        """Payload lookup that returns None instead of raising (diagnostics)."""
        return self._pages.get(pid)
