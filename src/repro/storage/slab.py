"""Slab allocation: packing many small borders into shared pages.

The ECDF-B section of the paper notes: "a border may contain only a few
points and thus it is wasteful to keep a separate tree for this border
(which costs one I/O to retrieve).  To avoid this, we can use a single disk
page to keep multiple borders."  The slab allocator implements that
optimization for every structure in the package: a small border is an
array of entries placed inside a shared page; touching the border costs one
access to that page.

The allocator manages *space* and *I/O accounting*; the entry payloads
themselves are owned by the border objects (the simulated disk stores
Python objects, see :mod:`repro.storage.pager`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.errors import SlabError
from .buffer import BufferPool
from .pager import Pager


@dataclass(frozen=True)
class SlabHandle:
    """A reservation of ``nbytes`` inside shared page ``pid``."""

    pid: int
    slot: int
    nbytes: int


class _SlabPage:
    """Bookkeeping payload stored on each shared page."""

    __slots__ = ("used_bytes", "live_slots", "next_slot")

    def __init__(self) -> None:
        self.used_bytes = 0
        self.live_slots = 0
        self.next_slot = 0


class SlabAllocator:
    """First-fit allocator of sub-page extents across a pool of shared pages."""

    def __init__(self, pager: Pager, buffer: BufferPool) -> None:
        self._pager = pager
        self._buffer = buffer
        #: page id -> free bytes, for pages with room left.
        self._free_space: Dict[int, int] = {}
        self._live: Dict[SlabHandle, bool] = {}

    @property
    def page_size(self) -> int:
        """Byte capacity of one shared page."""
        return self._pager.page_size

    # -- allocation -------------------------------------------------------------

    def allocate(self, nbytes: int) -> SlabHandle:
        """Reserve ``nbytes`` inside some shared page and return a handle.

        Allocations never span pages; requests larger than a page must be
        promoted to a page-based structure by the caller (that is exactly
        the borders' spill threshold).
        """
        if nbytes <= 0:
            raise SlabError(f"allocation size must be positive, got {nbytes}")
        if nbytes > self.page_size:
            raise SlabError(f"allocation of {nbytes} bytes exceeds the {self.page_size}-byte page")
        pid = self._find_page(nbytes)
        page: _SlabPage = self._pager.get(pid)
        handle = SlabHandle(pid, page.next_slot, nbytes)
        page.next_slot += 1
        page.used_bytes += nbytes
        page.live_slots += 1
        free = self.page_size - page.used_bytes
        if free > 0:
            self._free_space[pid] = free
        else:
            self._free_space.pop(pid, None)
        self._live[handle] = True
        self._buffer.access(pid, write=True)
        return handle

    def _find_page(self, nbytes: int) -> int:
        for pid, free in self._free_space.items():
            if free >= nbytes:
                return pid
        pid = self._pager.allocate(_SlabPage())
        self._free_space[pid] = self.page_size
        return pid

    def resize(self, handle: SlabHandle, nbytes: int) -> SlabHandle:
        """Grow or shrink an allocation, possibly moving it to another page."""
        self._check_live(handle)
        page: _SlabPage = self._pager.get(handle.pid)
        delta = nbytes - handle.nbytes
        fits_in_place = (nbytes <= self.page_size and page.used_bytes + delta <= self.page_size)
        if fits_in_place:
            del self._live[handle]
            page.used_bytes += delta
            new_handle = SlabHandle(handle.pid, handle.slot, nbytes)
            self._live[new_handle] = True
            free = self.page_size - page.used_bytes
            if free > 0:
                self._free_space[handle.pid] = free
            else:
                self._free_space.pop(handle.pid, None)
            self._buffer.access(handle.pid, write=True)
            return new_handle
        self.free(handle)
        return self.allocate(nbytes)

    def free(self, handle: SlabHandle) -> None:
        """Release an allocation; empty shared pages are returned to the pager."""
        self._check_live(handle)
        del self._live[handle]
        page: _SlabPage = self._pager.get(handle.pid)
        page.used_bytes -= handle.nbytes
        page.live_slots -= 1
        if page.live_slots == 0:
            self._free_space.pop(handle.pid, None)
            self._buffer.invalidate(handle.pid)
            self._pager.free(handle.pid)
        else:
            self._free_space[handle.pid] = self.page_size - page.used_bytes

    # -- access -------------------------------------------------------------------

    def access(self, handle: SlabHandle, write: bool = False) -> None:
        """Touch the shared page holding this allocation (one potential I/O)."""
        self._check_live(handle)
        self._buffer.access(handle.pid, write=write)

    def _check_live(self, handle: SlabHandle) -> None:
        if handle not in self._live:
            raise SlabError(f"use of dead slab handle {handle}")

    # -- reporting -----------------------------------------------------------------

    def live_allocations(self) -> int:
        """Number of live handles (diagnostics and tests)."""
        return len(self._live)

    def used_bytes(self, pid: int) -> Optional[int]:
        """Bytes in use on a shared page, or None if ``pid`` is not a slab page."""
        payload = self._pager.payload_or_none(pid)
        if isinstance(payload, _SlabPage):
            return payload.used_bytes
        return None
