"""ECDF-B-trees: disk-based, dynamic externalizations of the ECDF-tree.

Section 4 of the paper: "we extend the binary search tree at each level
into a B+-tree ... While each internal node of the ECDF-tree has two
children, an internal node of the ECDF-B-tree has between B/2 and B
children.  Children are divided by borders.  Depending on the meaning of
the borders, we have two different versions":

* **ECDF-Bu-tree** (``variant="u"``): border ``t_i`` contains the points of
  ``subtree(e_i)`` only.  An insert touches one border per level
  (Figure 6a); a query must examine every border left of the descent child
  (Figure 6b).
* **ECDF-Bq-tree** (``variant="q"``): border ``t_i`` contains the points of
  ``subtree(e_1) ... subtree(e_i)`` (a prefix).  A query touches a single
  border per level (Figure 6d); an insert must update every border at or
  right of the descent child (Figure 6c).

Borders are (d-1)-dimensional dominance-sum structures over the points
projected onto dimensions ``2..d``; 1-dimensional borders bottom out in the
aggregated B+-tree.  Small borders live in shared slab pages (the paper's
packing optimization); splits rebuild the affected borders by bulk-loading
collected subtree points, whose cost amortizes over the inserts that filled
the split node (the amortization argument in the proof of Theorem 4).

A 1-dimensional ECDF-B-tree "is basically a B+-tree" (ibid.), so ``dims=1``
transparently delegates to :class:`~repro.bptree.AggBPlusTree`.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..borders import Border
from ..bptree import AggBPlusTree
from ..core.errors import DimensionMismatchError, TreeInvariantError
from ..core.geometry import Coords, as_coords
from ..core.values import Value, values_equal
from ..obs import trace as _trace
from ..storage import StorageContext

_Entry = Tuple[Coords, Value]
_Split = Tuple[float, int]  # (separator key, new right sibling pid)


class _Leaf:
    """Main-branch leaf: full points sorted by (first coordinate, point)."""

    __slots__ = ("pid", "entries")

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.entries: List[_Entry] = []

    @property
    def is_leaf(self) -> bool:
        return True


class _Internal:
    """Main-branch internal node: children separated by keys, with borders.

    ``borders[i]`` sits between ``children[i]`` and ``children[i+1]``
    (``len(borders) == len(children) - 1``); its contents depend on the
    variant (see module docstring).
    """

    __slots__ = ("pid", "seps", "children", "borders")

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.seps: List[float] = []
        self.children: List[int] = []
        self.borders: List[Border] = []

    @property
    def is_leaf(self) -> bool:
        return False


class EcdfBTree:
    """A d-dimensional ECDF-Bu- or ECDF-Bq-tree over a shared storage context."""

    def __init__(
        self,
        storage: StorageContext,
        dims: int,
        variant: str = "u",
        zero: Value = 0.0,
        value_bytes: Optional[int] = None,
        leaf_capacity: Optional[int] = None,
        internal_capacity: Optional[int] = None,
        spill_bytes: Optional[int] = None,
    ) -> None:
        if dims < 1:
            raise DimensionMismatchError(f"dims must be >= 1, got {dims}")
        if variant not in ("u", "q"):
            raise ValueError(f"variant must be 'u' or 'q', got {variant!r}")
        self.storage = storage
        self.dims = dims
        self.variant = variant
        self.zero = zero
        self.value_bytes = (value_bytes if value_bytes is not None else storage.layout.value_bytes)
        self.spill_bytes = spill_bytes
        layout = storage.with_layout(self.value_bytes)
        self._delegate: Optional[AggBPlusTree] = None
        if dims == 1:
            self._delegate = AggBPlusTree(
                storage,
                zero=zero,
                value_bytes=self.value_bytes,
                leaf_capacity=leaf_capacity,
                internal_capacity=internal_capacity,
            )
            return
        self.leaf_capacity = leaf_capacity or layout.point_leaf_capacity(dims)
        self.internal_capacity = internal_capacity or layout.ecdf_internal_capacity()
        if self.leaf_capacity < 2:
            raise ValueError(f"leaf_capacity must be >= 2, got {self.leaf_capacity}")
        if self.internal_capacity < 3:
            raise ValueError(f"internal_capacity must be >= 3, got {self.internal_capacity}")
        self._sub_leaf_capacity = leaf_capacity
        self._sub_internal_capacity = internal_capacity
        root = _Leaf(storage.pager.allocate())
        storage.pager.put(root.pid, root)
        self.root_pid = root.pid
        self._total: Value = zero
        self.num_entries = 0
        self.height = 1

    # -- helpers -----------------------------------------------------------------

    def _fetch(self, pid: int, write: bool = False):
        self.storage.buffer.access(pid, write=write)
        return self.storage.pager.get(pid)

    def _new_leaf(self) -> _Leaf:
        node = _Leaf(self.storage.pager.allocate())
        self.storage.pager.put(node.pid, node)
        return node

    def _new_internal(self) -> _Internal:
        node = _Internal(self.storage.pager.allocate())
        self.storage.pager.put(node.pid, node)
        return node

    def _make_border_subtree(self) -> object:
        sub_dims = self.dims - 1
        if sub_dims == 1:
            return AggBPlusTree(
                self.storage,
                zero=self.zero,
                value_bytes=self.value_bytes,
                leaf_capacity=self._sub_leaf_capacity,
                internal_capacity=self._sub_internal_capacity,
            )
        return EcdfBTree(
            self.storage,
            sub_dims,
            variant=self.variant,
            zero=self.zero,
            value_bytes=self.value_bytes,
            leaf_capacity=self._sub_leaf_capacity,
            internal_capacity=self._sub_internal_capacity,
            spill_bytes=self.spill_bytes,
        )

    def _new_border(self) -> Border:
        entry_bytes = 8 * (self.dims - 1) + self.value_bytes
        return Border(
            self.storage,
            self.dims - 1,
            self.zero,
            entry_bytes,
            self._make_border_subtree,
            spill_bytes=self.spill_bytes,
        )

    def _build_border(self, points: Iterable[_Entry]) -> Border:
        border = self._new_border()
        border.bulk_load((coords[1:], value) for coords, value in points)
        return border

    # -- queries ---------------------------------------------------------------------

    def dominance_sum(self, point: Sequence[float]) -> Value:
        """Sum of values of stored points strictly dominated by ``point``."""
        if self._delegate is not None:
            return self._delegate.dominance_sum(_first(point))
        coords = self._check_point(point)
        tracer = _trace._ACTIVE
        if tracer is None:
            return self._dominance_sum(coords, None)
        with tracer.span(f"ecdf-b{self.variant}.dominance_sum", dims=self.dims):
            return self._dominance_sum(coords, tracer)

    def _dominance_sum(self, coords: Coords, tracer) -> Value:
        result = self.zero
        pid = self.root_pid
        suffix = coords[1:]
        while True:
            node = self._fetch(pid)
            if tracer is not None:
                tracer.event("node", pid=pid, leaf=node.is_leaf)
            if node.is_leaf:
                for stored, value in node.entries:
                    if all(s < c for s, c in zip(stored, coords)):
                        result = result + value
                return result
            idx = bisect_right(node.seps, coords[0])
            if self.variant == "u":
                for border in node.borders[:idx]:
                    result = result + border.dominance_sum(suffix)
            elif idx > 0:
                result = result + node.borders[idx - 1].dominance_sum(suffix)
            pid = node.children[idx]

    def total(self) -> Value:
        """Sum of every stored value."""
        if self._delegate is not None:
            return self._delegate.total()
        return self._total

    def __len__(self) -> int:
        if self._delegate is not None:
            return len(self._delegate)
        return self.num_entries

    # -- insertion ----------------------------------------------------------------------

    def insert(self, point: Sequence[float], value: Value) -> None:
        """Insert a weighted point, updating borders per the tree's variant."""
        if self._delegate is not None:
            self._delegate.insert(_first(point), value)
            return
        coords = self._check_point(point)
        self._total = self._total + value
        split = self._insert_into(self.root_pid, coords, value)
        if split is not None:
            sep, right_pid = split
            new_root = self._new_internal()
            new_root.seps = [sep]
            new_root.children = [self.root_pid, right_pid]
            new_root.borders = [self._build_border(self._collect(self.root_pid))]
            self.storage.buffer.access(new_root.pid, write=True)
            self.root_pid = new_root.pid
            self.height += 1

    def _insert_into(self, pid: int, coords: Coords, value: Value) -> Optional[_Split]:
        node = self._fetch(pid, write=True)
        if node.is_leaf:
            return self._leaf_insert(node, coords, value)
        idx = bisect_right(node.seps, coords[0])
        last = len(node.children) - 1
        suffix = coords[1:]
        if self.variant == "u":
            if idx < last:
                node.borders[idx].insert(suffix, value)
        else:
            for border in node.borders[idx:]:
                border.insert(suffix, value)
        split = self._insert_into(node.children[idx], coords, value)
        if split is None:
            return None
        self._integrate_child_split(node, idx, split)
        if len(node.children) <= self.internal_capacity:
            return None
        return self._split_internal(node)

    def _leaf_insert(self, leaf: _Leaf, coords: Coords, value: Value) -> Optional[_Split]:
        for i, (stored, stored_value) in enumerate(leaf.entries):
            if stored == coords:
                leaf.entries[i] = (stored, stored_value + value)
                return None
        insort(leaf.entries, (coords, value), key=lambda e: (e[0][0], e[0]))
        self.num_entries += 1
        if len(leaf.entries) <= self.leaf_capacity:
            return None
        return self._split_leaf(leaf)

    def _split_leaf(self, leaf: _Leaf) -> Optional[_Split]:
        mid = _first_coord_split(leaf.entries)
        if mid is None:
            # Every entry shares its first coordinate: the node cannot be
            # split on this dimension.  Tolerate the oversized leaf (rare
            # with continuous data; matches classic B+-tree duplicate-key
            # behaviour).
            return None
        right = self._new_leaf()
        right.entries = leaf.entries[mid:]
        leaf.entries = leaf.entries[:mid]
        self.storage.buffer.access(right.pid, write=True)
        return right.entries[0][0][0], right.pid

    def _integrate_child_split(self, node: _Internal, idx: int, split: _Split) -> None:
        """Splice a split child into ``node`` and repair the border lists.

        For the Bu variant (per-subtree borders) the pre-split border at
        ``idx`` is rebuilt for the left half and a border for the right
        half is added unless it became the last child.  For the Bq variant
        (prefix borders) existing borders stay valid; exactly one new
        prefix border — everything up to and including the left half — is
        inserted at ``idx``.
        """
        sep, right_pid = split
        node.seps.insert(idx, sep)
        node.children.insert(idx + 1, right_pid)
        last = len(node.children) - 1
        if self.variant == "u":
            left_border = self._build_border(self._collect(node.children[idx]))
            if idx < len(node.borders):
                node.borders[idx].destroy()
                node.borders[idx] = left_border
                if idx + 1 <= last - 1:
                    right_border = self._build_border(self._collect(node.children[idx + 1]))
                    node.borders.insert(idx + 1, right_border)
                else:  # pragma: no cover - right child can't be last here
                    raise TreeInvariantError("split child vanished")
            else:
                # The split child was the last one: only the left half
                # needs a border; the right half is the new last child.
                node.borders.insert(idx, left_border)
        else:
            prefix_points = self._collect_many(node.children[: idx + 1])
            node.borders.insert(idx, self._build_border(prefix_points))

    def _split_internal(self, node: _Internal) -> _Split:
        m = len(node.children)
        h = m // 2
        sep = node.seps[h - 1]
        right = self._new_internal()
        right.seps = node.seps[h:]
        right.children = node.children[h:]
        if self.variant == "u":
            right.borders = node.borders[h:]
            node.borders[h - 1].destroy()
            node.borders = node.borders[: h - 1]
        else:
            for border in node.borders[h - 1 :]:
                border.destroy()
            node.borders = node.borders[: h - 1]
            right.borders = []
            for i in range(len(right.children) - 1):
                prefix_points = self._collect_many(right.children[: i + 1])
                right.borders.append(self._build_border(prefix_points))
        node.seps = node.seps[: h - 1]
        node.children = node.children[:h]
        self.storage.buffer.access(right.pid, write=True)
        return sep, right.pid

    # -- bulk loading -------------------------------------------------------------------

    def bulk_load(self, items: Iterable[Tuple[Sequence[float], Value]]) -> None:
        """Build the tree from scratch; borders are bulk-built per level.

        This is the paper's bulk-loading procedure: points are sorted and
        loaded into a B+-tree on the first dimension, and as each node is
        generated its border information is calculated by bulk-loading a
        lower-rank tree.
        """
        if self._delegate is not None:
            self._delegate.bulk_load(( _first(point), value) for point, value in items)
            return
        merged: dict = {}
        total = self.zero
        for point, value in items:
            coords = self._check_point(point)
            total = total + value
            if coords in merged:
                merged[coords] = merged[coords] + value
            else:
                merged[coords] = value
        entries: List[_Entry] = sorted(merged.items(), key=lambda e: (e[0][0], e[0]))
        self._free_subtree(self.root_pid)
        self._total = total
        self.num_entries = len(entries)
        leaf_ranges = _partition_keeping_first_coords(entries, self.leaf_capacity)
        leaves: List[Tuple[int, int, int]] = []  # (pid, start, end)
        for start, end in leaf_ranges:
            leaf = self._new_leaf()
            leaf.entries = entries[start:end]
            self.storage.buffer.access(leaf.pid, write=True)
            leaves.append((leaf.pid, start, end))
        if not leaves:
            leaf = self._new_leaf()
            leaves.append((leaf.pid, 0, 0))
        level = leaves
        self.height = 1
        while len(level) > 1:
            next_level: List[Tuple[int, int, int]] = []
            for chunk in _chunks_no_orphan(level, self.internal_capacity):
                node = self._new_internal()
                node.children = [pid for pid, _s, _e in chunk]
                node.seps = [entries[s][0][0] for _pid, s, _e in chunk[1:]]
                node.borders = []
                for i in range(len(chunk) - 1):
                    if self.variant == "u":
                        span = entries[chunk[i][1] : chunk[i][2]]
                    else:
                        span = entries[chunk[0][1] : chunk[i][2]]
                    node.borders.append(self._build_border(span))
                self.storage.buffer.access(node.pid, write=True)
                next_level.append((node.pid, chunk[0][1], chunk[-1][2]))
            level = next_level
            self.height += 1
        self.root_pid = level[0][0]

    # -- maintenance -----------------------------------------------------------------------

    def collect(self) -> Iterator[_Entry]:
        """Yield every stored ``(point, value)`` (page accesses included)."""
        if self._delegate is not None:
            for key, value in self._delegate.collect():
                yield (key,), value
            return
        yield from self._collect(self.root_pid)

    def _collect(self, pid: int) -> Iterator[_Entry]:
        node = self._fetch(pid)
        if node.is_leaf:
            yield from node.entries
            return
        for child in node.children:
            yield from self._collect(child)

    def _collect_many(self, pids: Sequence[int]) -> Iterator[_Entry]:
        for pid in pids:
            yield from self._collect(pid)

    def destroy(self) -> None:
        """Free every page (main branch, borders, slabs) and reset to empty."""
        if self._delegate is not None:
            self._delegate.destroy()
            return
        if hasattr(self, "root_pid"):
            self._free_subtree(self.root_pid)
        root = self._new_leaf()
        self.root_pid = root.pid
        self._total = self.zero
        self.num_entries = 0
        self.height = 1

    def release(self) -> None:
        """Free every page without recreating a root; the tree becomes unusable."""
        if self._delegate is not None:
            self._delegate.release()
            return
        self._free_subtree(self.root_pid)
        self.root_pid = -1
        self.num_entries = 0

    def _free_subtree(self, pid: int) -> None:
        node = self.storage.pager.get(pid)
        if not node.is_leaf:
            for border in node.borders:
                border.destroy()
            for child in node.children:
                self._free_subtree(child)
        self.storage.buffer.invalidate(pid)
        self.storage.pager.free(pid)

    # -- invariants -----------------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify routing ranges, border contents and totals (test support)."""
        if self._delegate is not None:
            self._delegate.check_invariants()
            return
        total, _height = self._check_node(self.root_pid, float("-inf"), float("inf"), is_root=True)
        if not values_equal(total, self._total, tol=1e-6):
            raise TreeInvariantError("tree total mismatch")

    def _check_node(
        self, pid: int, low: float, high: float, is_root: bool = False
    ) -> Tuple[Value, int]:
        node = self.storage.pager.get(pid)
        if node.is_leaf:
            total = self.zero
            prev = None
            for coords, value in node.entries:
                if not low <= coords[0] < high:
                    raise TreeInvariantError(f"leaf {pid} point {coords} outside [{low}, {high})")
                key = (coords[0], coords)
                if prev is not None and key < prev:
                    raise TreeInvariantError(f"leaf {pid} entries out of order")
                prev = key
                total = total + value
            return total, 1
        if len(node.borders) != len(node.children) - 1:
            raise TreeInvariantError(f"internal {pid} border count mismatch")
        if len(node.seps) != len(node.children) - 1:
            raise TreeInvariantError(f"internal {pid} separator count mismatch")
        bounds = [low, *node.seps, high]
        if bounds != sorted(bounds):
            raise TreeInvariantError(f"internal {pid} separators out of order")
        total = self.zero
        child_totals = []
        height = None
        for i, child in enumerate(node.children):
            child_total, child_height = self._check_node(child, bounds[i], bounds[i + 1])
            child_totals.append(child_total)
            total = total + child_total
            if height is None:
                height = child_height
            elif height != child_height:
                raise TreeInvariantError(f"internal {pid} unbalanced children")
        for i, border in enumerate(node.borders):
            if self.variant == "u":
                expected = child_totals[i]
            else:
                expected = self.zero
                for t in child_totals[: i + 1]:
                    expected = expected + t
            if not values_equal(border.total(), expected, tol=1e-6):
                raise TreeInvariantError(
                    f"internal {pid} border {i} total mismatch "
                    f"({border.total()} != {expected})"
                )
        assert height is not None
        return total, height + 1

    # -- validation -------------------------------------------------------------------------------

    def _check_point(self, point: Sequence[float]) -> Coords:
        coords = point if isinstance(point, tuple) else as_coords(point)
        if len(coords) != self.dims:
            raise DimensionMismatchError(f"point arity {len(coords)} != tree dims {self.dims}")
        return coords


def _chunks_no_orphan(items: List, size: int) -> Iterator[List]:
    """Chunk ``items`` by ``size`` without leaving a final 1-element chunk."""
    n = len(items)
    start = 0
    while start < n:
        end = start + size
        if n - end == 1 and size > 2:
            end -= 1
        yield items[start:end]
        start = end


def _first(point: Sequence[float]) -> float:
    """Extract the single coordinate for 1-d delegation (accepts scalars too)."""
    if isinstance(point, (int, float)):
        return float(point)
    if len(point) != 1:
        raise DimensionMismatchError(f"point arity {len(point)} != tree dims 1")
    return float(point[0])


def _first_coord_split(entries: List[_Entry]) -> Optional[int]:
    """A split index whose boundary does not cut a run of equal first coordinates.

    Prefers the position closest to the middle; returns None when every
    entry shares the first coordinate (the node is unsplittable on this
    dimension).
    """
    n = len(entries)
    mid = n // 2
    forward = mid
    while forward < n and entries[forward][0][0] == entries[forward - 1][0][0]:
        forward += 1
    backward = mid
    while backward > 0 and entries[backward][0][0] == entries[backward - 1][0][0]:
        backward -= 1
    candidates = [c for c in (forward, backward) if 0 < c < n]
    if not candidates:
        return None
    return min(candidates, key=lambda c: abs(c - mid))


def _partition_keeping_first_coords(entries: List[_Entry], capacity: int) -> List[Tuple[int, int]]:
    """Chunk sorted entries into leaf ranges without cutting equal-first-coord runs."""
    ranges: List[Tuple[int, int]] = []
    n = len(entries)
    start = 0
    while start < n:
        end = min(start + capacity, n)
        while end < n and entries[end][0][0] == entries[end - 1][0][0]:
            end += 1
        ranges.append((start, end))
        start = end
    return ranges
