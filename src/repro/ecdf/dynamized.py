"""Bentley–Saxe logarithmic dynamization of the static ECDF-tree.

The paper's related-work section points at the standard static-to-dynamic
transformations ("for example, the global rebuilding [24] or the
logarithmic method [8]") as the textbook alternative to the ECDF-B-trees.
This module implements the logarithmic method [Bentley & Saxe 1980] so the
benchmarks can compare it against the paper's purpose-built dynamic
structures:

* the store is a collection of static ECDF-trees with sizes that are
  distinct powers of two (times a base block size);
* an insert goes into a buffer; when the buffer fills, it is merged with
  every colliding block into one rebuilt static tree (binary-counter
  carry), giving ``O(log n)`` amortized rebuild work per insert — but in
  *main memory*, unlike the paper's disk-based trees;
* a dominance-sum query must consult every live block: ``O(log n)``
  structures per query.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.errors import DimensionMismatchError
from ..core.geometry import Coords, as_coords
from ..core.values import Value
from .ecdf_tree import StaticEcdfTree

_Point = Tuple[Coords, Value]


class LogarithmicEcdfTree:
    """A dynamic dominance-sum index made of O(log n) static ECDF-trees."""

    def __init__(self, dims: int, zero: Value = 0.0, block_size: int = 16) -> None:
        if dims < 1:
            raise DimensionMismatchError(f"dims must be >= 1, got {dims}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.dims = dims
        self.zero = zero
        self.block_size = block_size
        self._buffer: List[_Point] = []
        #: level -> (static tree, its points); level k holds block_size * 2^k points.
        self._blocks: Dict[int, Tuple[StaticEcdfTree, List[_Point]]] = {}
        self._total: Value = zero
        self.num_points = 0

    # -- updates -----------------------------------------------------------------

    def insert(self, point: Sequence[float], value: Value) -> None:
        """Buffered insert with binary-counter carries into static blocks."""
        coords = as_coords(point)
        if len(coords) != self.dims:
            raise DimensionMismatchError(f"point arity {len(coords)} != tree dims {self.dims}")
        self._buffer.append((coords, value))
        self._total = self._total + value
        self.num_points += 1
        if len(self._buffer) >= self.block_size:
            self._carry(self._buffer)
            self._buffer = []

    def _carry(self, points: List[_Point]) -> None:
        level = 0
        while level in self._blocks:
            _tree, existing = self._blocks.pop(level)
            points = points + existing
            level += 1
        tree = StaticEcdfTree(self.dims, zero=self.zero)
        tree.bulk_load(points)
        self._blocks[level] = (tree, points)

    def bulk_load(self, items: Iterable[Tuple[Sequence[float], Value]]) -> None:
        """Rebuild the whole store as one static block."""
        points = [(as_coords(p), v) for p, v in items]
        self._buffer = []
        self._blocks = {}
        self._total = self.zero
        self.num_points = len(points)
        for _coords, value in points:
            self._total = self._total + value
        if points:
            tree = StaticEcdfTree(self.dims, zero=self.zero)
            tree.bulk_load(points)
            self._blocks[0] = (tree, points)

    # -- queries --------------------------------------------------------------------

    def dominance_sum(self, point: Sequence[float]) -> Value:
        """Strict dominance-sum: one query per live block plus a buffer scan."""
        coords = as_coords(point)
        if len(coords) != self.dims:
            raise DimensionMismatchError(f"point arity {len(coords)} != tree dims {self.dims}")
        result = self.zero
        for tree, _points in self._blocks.values():
            result = result + tree.dominance_sum(coords)
        for stored, value in self._buffer:
            if all(s < c for s, c in zip(stored, coords)):
                result = result + value
        return result

    def total(self) -> Value:
        """Sum of every stored value."""
        return self._total

    @property
    def num_blocks(self) -> int:
        """Live static blocks (the ``O(log n)`` factor queries pay)."""
        return len(self._blocks)

    def __len__(self) -> int:
        return self.num_points
