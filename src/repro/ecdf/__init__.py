"""ECDF-tree family: Bentley's static structure and the paper's ECDF-B-trees."""

from .ecdf_tree import StaticEcdfTree
from .dynamized import LogarithmicEcdfTree
from .ecdf_b import EcdfBTree

__all__ = ["StaticEcdfTree", "LogarithmicEcdfTree", "EcdfBTree"]
