"""Bentley's ECDF-tree: the static, main-memory dominance-sum structure.

Section 4 of the paper: "The ECDF-tree is a multi-level data structure,
where each level corresponds to a different dimension.  At the first level
(also called main branch), the d-dimensional ECDF-tree is a full binary
search tree whose leaves store the data points, ordered by their position
in the first dimension.  Each internal node of this binary search tree
stores a border for all the points in the left sub-tree.  The border is
itself a (d-1)-dimensional ECDF-tree [over the second dimension and so on]."

The query recursion is as described there: if the query coordinate falls in
the left subtree the search continues left; otherwise one query runs on the
*border* (which settles every left-subtree point in one lower-dimensional
dominance-sum) and one on the right subtree.

This implementation is the in-memory correctness oracle for the disk-based
structures and the building block of the Bentley–Saxe dynamization in
:mod:`repro.ecdf.dynamized`.  The deepest dimension is a sorted array with
prefix sums; small subtrees collapse into scanned arrays.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.errors import DimensionMismatchError, NotSupportedError
from ..core.geometry import Coords, as_coords
from ..core.values import Value

#: Subtrees at or below this many points are stored as scanned arrays.
_SCAN_THRESHOLD = 8

_Point = Tuple[Coords, Value]


class _PrefixArray:
    """Deepest-dimension base case: sorted keys with running prefix sums."""

    __slots__ = ("keys", "prefix", "zero")

    def __init__(self, points: List[_Point], depth: int, zero: Value) -> None:
        pairs = sorted((pt[depth], value) for pt, value in points)
        self.keys = [k for k, _v in pairs]
        self.zero = zero
        self.prefix = []
        running = zero
        for _k, v in pairs:
            running = running + v
            self.prefix.append(running)

    def query(self, point: Coords, depth: int) -> Value:
        cut = bisect_left(self.keys, point[depth])
        if cut == 0:
            return self.zero
        return self.prefix[cut - 1]


class _ScanNode:
    """Small-subtree base case: an unsorted bucket checked exhaustively."""

    __slots__ = ("points", "zero")

    def __init__(self, points: List[_Point], zero: Value) -> None:
        self.points = points
        self.zero = zero

    def query(self, point: Coords, depth: int) -> Value:
        total = self.zero
        for coords, value in self.points:
            if all(coords[i] < point[i] for i in range(depth, len(point))):
                total = total + value
        return total


class _BranchNode:
    """Internal node of the main branch at one dimension level."""

    __slots__ = ("split", "left", "right", "border")

    def __init__(self, split: float, left: object, right: object, border: object) -> None:
        self.split = split
        self.left = left
        self.right = right
        #: dominance structure over the left subtree's points at depth + 1,
        #: or their plain total when this is the deepest dimension... never:
        #: branch nodes are only built above the deepest dimension.
        self.border = border

    def query(self, point: Coords, depth: int) -> Value:
        if point[depth] <= self.split:
            return self.left.query(point, depth)
        partial = self.border.query(point, depth + 1)
        return partial + self.right.query(point, depth)


def _build(points: List[_Point], depth: int, dims: int, zero: Value) -> object:
    if depth == dims - 1:
        return _PrefixArray(points, depth, zero)
    if len(points) <= _SCAN_THRESHOLD:
        return _ScanNode(points, zero)
    ordered = sorted(points, key=lambda item: item[0][depth])
    mid = len(ordered) // 2
    split = ordered[mid][0][depth]
    left_points = ordered[:mid]
    right_points = ordered[mid:]
    left = _build(left_points, depth, dims, zero)
    right = _build(right_points, depth, dims, zero)
    border = _build(left_points, depth + 1, dims, zero)
    return _BranchNode(split, left, right, border)


class StaticEcdfTree:
    """The classic static ECDF-tree; built once with :meth:`bulk_load`.

    ``insert`` raises :class:`~repro.core.errors.NotSupportedError` — the
    whole point of the paper's Section 4 is that this structure is static;
    use :class:`~repro.ecdf.dynamized.LogarithmicEcdfTree` or the
    ECDF-B-trees for dynamic workloads.
    """

    def __init__(self, dims: int, zero: Value = 0.0) -> None:
        if dims < 1:
            raise DimensionMismatchError(f"dims must be >= 1, got {dims}")
        self.dims = dims
        self.zero = zero
        self._root: Optional[object] = None
        self._total: Value = zero
        self.num_points = 0

    def bulk_load(self, items: Iterable[Tuple[Sequence[float], Value]]) -> None:
        """(Re)build the tree from ``(point, value)`` pairs."""
        points: List[_Point] = []
        total = self.zero
        for point, value in items:
            coords = as_coords(point)
            if len(coords) != self.dims:
                raise DimensionMismatchError(f"point arity {len(coords)} != tree dims {self.dims}")
            points.append((coords, value))
            total = total + value
        self.num_points = len(points)
        self._total = total
        self._root = _build(points, 0, self.dims, self.zero) if points else None

    def insert(self, point: Sequence[float], value: Value) -> None:
        """Unsupported: the ECDF-tree is static (see class docstring)."""
        raise NotSupportedError(
            "the static ECDF-tree cannot be updated in place; use "
            "LogarithmicEcdfTree or an ECDF-B-tree"
        )

    def dominance_sum(self, point: Sequence[float]) -> Value:
        """Sum of values of stored points strictly dominated by ``point``."""
        coords = as_coords(point)
        if len(coords) != self.dims:
            raise DimensionMismatchError(f"point arity {len(coords)} != tree dims {self.dims}")
        if self._root is None:
            return self.zero
        return self._root.query(coords, 0)

    def total(self) -> Value:
        """Sum of every stored value."""
        return self._total

    def __len__(self) -> int:
        return self.num_points
