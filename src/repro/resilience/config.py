"""Tuning knobs for the fault-tolerant serving path.

Two frozen dataclasses so a whole cluster's failure policy is one hashable,
printable value:

* :class:`BreakerConfig` — the per-member circuit breaker: a rolling window
  of recent outcomes trips the breaker open once the error rate crosses a
  threshold, a cooldown later lets a half-open trickle of probes decide
  whether the member has healed;
* :class:`ResilienceConfig` — the per-shard failover loop: attempt
  deadline, retry budget, jittered exponential backoff between attempts,
  optional hedged reads for tail latency, and whether a whole-group outage
  degrades to a :class:`~repro.resilience.partial.PartialResult` instead of
  raising :class:`~repro.core.errors.ShardUnavailableError`.

Everything time-like is injectable (``clock``/``sleep`` land on the group,
not here) and every random draw is seeded, so failure handling is as
reproducible as the failures the chaos harness injects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit breaker policy for one replica-group member.

    Parameters
    ----------
    window:
        How many recent request outcomes the rolling error-rate window
        remembers (per member).
    min_requests:
        Outcomes required in the window before the breaker may trip — a
        single failure on a cold member must not blacklist it.
    failure_threshold:
        Error rate in ``[0, 1]`` at (or above) which a closed breaker trips
        open.
    cooldown_s:
        Seconds an open breaker rejects traffic before transitioning to
        half-open on the next ``allow()``.
    half_open_probes:
        Consecutive successful half-open probes required to close again; a
        single half-open failure re-opens (and restarts the cooldown).
    """

    window: int = 16
    min_requests: int = 4
    failure_threshold: float = 0.5
    cooldown_s: float = 5.0
    half_open_probes: int = 2

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.min_requests < 1:
            raise ValueError(f"min_requests must be >= 1, got {self.min_requests}")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError(f"failure_threshold must be in (0, 1], got {self.failure_threshold}")
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if self.half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1, got {self.half_open_probes}")


@dataclass(frozen=True)
class ResilienceConfig:
    """Failover policy for one cluster (applied per replica group).

    Parameters
    ----------
    max_attempts:
        Total serve attempts per request per shard, across members; the
        first attempt plus up to ``max_attempts - 1`` failovers.
    deadline_s:
        Per-attempt deadline in seconds.  ``None`` disables deadlines and
        keeps every call on the caller's thread (fully deterministic); a
        deadline routes attempts through the group's executor so a hung
        member can be abandoned.
    backoff_base_s / backoff_multiplier / backoff_jitter:
        Sleep between attempt ``i`` and ``i+1`` is
        ``base * multiplier**i * (1 + jitter * U(-1, 1))`` with ``U`` drawn
        from a seeded RNG — exponential growth, deterministic jitter.
    hedge_delay_s:
        When set, a read still pending after this many seconds triggers a
        second, concurrent attempt on the next healthy member; first answer
        wins (both are exact, so the race is pure latency).  ``None``
        disables hedging.
    mutation_retries:
        Extra attempts a *mutation* gets on one member after a
        :class:`~repro.core.errors.ServiceOverloadedError` before the
        member is poisoned.  Admission rejection is fail-fast — nothing
        was applied — so retrying it (with the same jittered backoff as
        failover) is safe, unlike retrying an exception thrown mid-apply.
    partial_results:
        When True, a shard whose whole replica group is down degrades the
        batch to a :class:`~repro.resilience.partial.PartialResult` (exact
        over the answered shards, the outage explicit) instead of raising
        :class:`~repro.core.errors.ShardUnavailableError`.
    breaker:
        Per-member :class:`BreakerConfig`.
    seed:
        Seed for the jitter RNG (per group, offset by shard id).
    """

    max_attempts: int = 3
    deadline_s: Optional[float] = None
    backoff_base_s: float = 0.005
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.5
    hedge_delay_s: Optional[float] = None
    mutation_retries: int = 2
    partial_results: bool = False
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.backoff_base_s < 0:
            raise ValueError(f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}")
        if self.hedge_delay_s is not None and self.hedge_delay_s < 0:
            raise ValueError(f"hedge_delay_s must be >= 0, got {self.hedge_delay_s}")
        if self.mutation_retries < 0:
            raise ValueError(f"mutation_retries must be >= 0, got {self.mutation_retries}")


__all__ = ["BreakerConfig", "ResilienceConfig"]
