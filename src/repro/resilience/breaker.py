"""Per-member circuit breaker: closed → open → half-open → closed.

The breaker answers one question before every attempt — *is this member
worth trying right now?* — from a rolling window of its recent outcomes:

* **closed** — traffic flows; every outcome lands in the window; once at
  least ``min_requests`` outcomes are recorded and the window's error rate
  reaches ``failure_threshold``, the breaker trips **open**;
* **open** — ``allow()`` is False (the failover loop skips the member
  entirely, which is what actually stops a dead primary from eating one
  timeout per query); after ``cooldown_s`` the next ``allow()`` moves to
  **half-open**;
* **half-open** — a trickle of real requests probes the member;
  ``half_open_probes`` consecutive successes close the breaker (window
  cleared — the member starts with a clean record), any failure re-opens
  it and restarts the cooldown.

``force_open()`` is the terminal state for members that *cannot* be
retried safely — a replica whose mutation stream diverged mid-apply — and
wins over every transition.

The clock is injectable so tests (and the deterministic chaos torture
loop) can drive cooldowns without sleeping; all state is behind one lock
because the cluster fan-out executor calls breakers from many threads.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, Optional

from .config import BreakerConfig

#: Breaker states (string-valued for cheap introspection/metrics).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"
FORCED_OPEN = "forced_open"


class CircuitBreaker:
    """Rolling-error-rate circuit breaker with an injectable clock.

    ``on_transition(old_state, new_state)`` fires on every state change
    (under the breaker lock — transitions are rare and the callback is
    expected to be a counter bump), so the owning replica group publishes
    ``repro_resilience_*`` metrics without polling.
    """

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self.config = config if config is not None else BreakerConfig()
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=self.config.window)
        self._opened_at = 0.0
        self._half_open_successes = 0
        self._trips = 0

    # -- state ---------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state; an elapsed cooldown reads as ``half_open``."""
        with self._lock:
            if (self._state == OPEN and self._clock() - self._opened_at >= self.config.cooldown_s):
                return HALF_OPEN
            return self._state

    @property
    def trips(self) -> int:
        """Times the breaker has transitioned to open (incl. re-opens)."""
        return self._trips

    def _transition(self, new_state: str) -> None:
        old, self._state = self._state, new_state
        if new_state in (OPEN, FORCED_OPEN):
            self._opened_at = self._clock()
            self._trips += 1
        if new_state != HALF_OPEN:
            self._half_open_successes = 0
        if self._on_transition is not None and old != new_state:
            self._on_transition(old, new_state)

    # -- the contract --------------------------------------------------------------

    def allow(self) -> bool:
        """May the next request be routed to this member right now?"""
        with self._lock:
            if self._state == FORCED_OPEN:
                return False
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.config.cooldown_s:
                    return False
                self._transition(HALF_OPEN)
            return True

    def record_success(self) -> None:
        with self._lock:
            if self._state == FORCED_OPEN:
                return
            if self._state == HALF_OPEN:
                self._half_open_successes += 1
                if self._half_open_successes >= self.config.half_open_probes:
                    self._outcomes.clear()
                    self._transition(CLOSED)
                return
            self._outcomes.append(True)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == FORCED_OPEN:
                return
            if self._state == HALF_OPEN:
                # The probe failed: the member has not healed.
                self._transition(OPEN)
                return
            if self._state == OPEN:
                return
            self._outcomes.append(False)
            if len(self._outcomes) < self.config.min_requests:
                return
            failures = sum(1 for ok in self._outcomes if not ok)
            if failures / len(self._outcomes) >= self.config.failure_threshold:
                self._transition(OPEN)

    def force_open(self) -> None:
        """Permanently exclude the member (e.g. a diverged replica)."""
        with self._lock:
            if self._state != FORCED_OPEN:
                self._transition(FORCED_OPEN)

    def reset(self) -> None:
        """Return to closed with a clean window — the revival path.

        The only way out of ``forced_open``: the caller (the replica
        group's ``revive``/``catch_up``) asserts the member's state has
        been re-synchronized, so its failure history is no longer
        evidence about its future.
        """
        with self._lock:
            self._outcomes.clear()
            if self._state != CLOSED:
                self._transition(CLOSED)

    # -- introspection -------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        with self._lock:
            outcomes = list(self._outcomes)
        failures = sum(1 for ok in outcomes if not ok)
        return {
            "state": self.state,
            "trips": float(self._trips),
            "window": float(len(outcomes)),
            "error_rate": failures / len(outcomes) if outcomes else 0.0,
        }


__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN", "FORCED_OPEN"]
