"""Partial results: exact over the shards that answered, explicit about the rest.

When a whole replica group is down there are only two honest answers:
raise (the default — :class:`~repro.core.errors.ShardUnavailableError`), or
degrade *explicitly*.  :class:`PartialResult` is the explicit form: the
per-query sums over every shard that answered — each bit-exact, because
dominance sums are additive over disjoint shard partitions — plus the
identities and extent MBRs of the shards that did not.

The extents are the error bound.  A missing shard contributes exactly 0 to
any query that does not intersect its extent (every object the shard owns
lies inside it), so :meth:`PartialResult.is_exact` can prove, per query,
that the outage did not touch the answer at all.  Queries that *do*
intersect a missing extent carry an unknown non-negative deficit (for
non-negative weights): the true sum is ``>= results[i]``.  Nothing here is
ever a silent approximation — callers opted in (``partial_results=True``)
and get the uncertainty as data, not as a wrong float.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.geometry import Box


class PartialResult:
    """A degraded batch answer: exact partial sums plus the outage's shape.

    Attributes
    ----------
    results:
        Per-query sums over the **answered** shards only (bit-identical to
        what a cluster holding just those shards' objects would return).
    answered / missing:
        Sorted shard ids that did / did not contribute.
    missing_extents:
        ``shard id -> extent MBR`` for the missing shards (None when a
        shard never stored anything or its extent is unknown — such a
        shard can prove nothing, so it taints every query).
    """

    __slots__ = ("results", "answered", "missing", "missing_extents", "_queries")

    def __init__(
        self,
        results: Sequence[float],
        *,
        answered: Sequence[int],
        missing: Sequence[int],
        missing_extents: Dict[int, Optional[Box]],
        queries: Optional[Sequence[Box]] = None,
    ) -> None:
        if not missing:
            raise ValueError("PartialResult requires at least one missing shard")
        self.results: List[float] = list(results)
        self.answered: Tuple[int, ...] = tuple(sorted(answered))
        self.missing: Tuple[int, ...] = tuple(sorted(missing))
        self.missing_extents: Dict[int, Optional[Box]] = {
            sid: missing_extents.get(sid) for sid in self.missing
        }
        self._queries: Optional[List[Box]] = list(queries) if queries is not None else None

    # -- the error bound -------------------------------------------------------------

    def is_exact(self, i: int) -> bool:
        """True when query ``i`` provably lost nothing to the outage.

        A missing shard with extent ``E`` holds only objects inside ``E``;
        a query that does not intersect ``E`` (paper's closed-box
        semantics) intersects none of them, so that shard's contribution is
        exactly 0 and ``results[i]`` is the true answer.  A missing shard
        with an *unknown* extent can never be ruled out.
        """
        if self._queries is None:
            return False
        query = self._queries[i]
        for extent in self.missing_extents.values():
            if extent is None or extent.intersects(query):
                return False
        return True

    def exact_indices(self) -> List[int]:
        """Indices of queries whose answers are provably exact."""
        if self._queries is None:
            return []
        return [i for i in range(len(self.results)) if self.is_exact(i)]

    @property
    def completeness(self) -> float:
        """Fraction of shards that answered."""
        total = len(self.answered) + len(self.missing)
        return len(self.answered) / total if total else 0.0

    # -- conveniences ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, i: int) -> float:
        return self.results[i]

    def __repr__(self) -> str:
        return (
            f"PartialResult(queries={len(self.results)}, "
            f"answered={list(self.answered)}, missing={list(self.missing)}, "
            f"exact={len(self.exact_indices())}/{len(self.results)})"
        )


__all__ = ["PartialResult"]
