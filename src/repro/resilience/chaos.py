"""Deterministic chaos injection for the serving path.

A fault-tolerance claim is only as good as the faults it survived, so this
module misbehaves *reproducibly*: :class:`FaultyQueryService` wraps any
:class:`~repro.service.service.QueryService`-shaped object and, per call,
draws once from a seeded ``random.Random`` to decide whether the call

* **raises** (:class:`InjectedFaultError` — a generic member crash),
* is **delayed** (sleeps ``delay_s``, then answers correctly — mild
  latency the failover deadline should tolerate),
* **hangs** (sleeps ``hang_s``, then answers correctly — a stuck member
  the deadline must abandon; the late answer is still exact, so a racer
  that accidentally takes it loses nothing but time), or
* reports **corrupted storage** (raises
  :class:`~repro.core.errors.PageCorruptionError`, exactly the error the
  durable pager's checksums raise on a real torn page or bit rot — see
  :mod:`repro.storage.faults`; for file-backed shards,
  :func:`bitflip_injector` arms *actual* on-disk corruption instead).

Rates are cumulative per call (they should sum to <= 1); at most one fault
fires per call, so a plan is a distribution over the five outcomes
(including "behave").  The same seed always yields the same fault
sequence, which is what lets :func:`repro.testing.check_failover` assert
bit-identical answers *under* injection and lets CI repeat the torture
loop without flakes.

The wrapper is transparent for everything it does not fault: unknown
attributes delegate to the wrapped service, so a
:class:`~repro.resilience.group.ReplicaGroup` (or any other caller)
cannot tell a chaotic member from a healthy one until it misbehaves.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..core.errors import PageCorruptionError
from ..core.geometry import Box
from ..storage.faults import CrashPoint, FaultInjector


class InjectedFaultError(Exception):
    """A chaos-injected member failure.

    Deliberately *not* a :class:`~repro.core.errors.ReproError`: the
    failover loop must survive arbitrary exceptions, exactly as it would a
    member dying of a bug it has no class for.
    """


@dataclass(frozen=True)
class ChaosPlan:
    """One member's misbehavior distribution (rates are cumulative).

    ``mutations=False`` (the default) confines faults to the read path:
    replica groups poison a member whose *mutation* fails (its state may
    have diverged), so read-only chaos is the mode that exercises failover
    without steadily shrinking the group.  Set ``mutations=True`` to
    torture the poisoning path itself.
    """

    seed: int = 0
    raise_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.002
    #: ``(low_ms, high_ms)``: when set, each injected delay draws its
    #: duration uniformly from this range (in milliseconds) with the same
    #: seeded RNG that schedules the faults — variable latency instead of
    #: the fixed ``delay_s``, which is what makes hedged reads fire on the
    #: slow draws and win with the fast member's answer.
    delay_ms: Optional[tuple] = None
    hang_rate: float = 0.0
    hang_s: float = 0.25
    corrupt_rate: float = 0.0
    mutations: bool = False

    def __post_init__(self) -> None:
        total = self.raise_rate + self.delay_rate + self.hang_rate + self.corrupt_rate
        if not 0.0 <= total <= 1.0:
            raise ValueError(f"fault rates must sum to within [0, 1], got {total}")
        for name in ("raise_rate", "delay_rate", "hang_rate", "corrupt_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.delay_ms is not None:
            if len(self.delay_ms) != 2:
                raise ValueError(f"delay_ms must be a (low, high) pair, got {self.delay_ms!r}")
            low, high = self.delay_ms
            if not 0 <= low <= high:
                raise ValueError(f"delay_ms needs 0 <= low <= high, got {self.delay_ms!r}")

    def with_seed(self, seed: int) -> "ChaosPlan":
        return replace(self, seed=seed)


class FaultyQueryService:
    """A query service that misbehaves on a seeded schedule.

    Set :attr:`enabled` to False to pause injection (the wrapper becomes a
    pure pass-through — used by healing tests to let a tripped breaker's
    half-open probes succeed); :attr:`calls` and :attr:`faults` count what
    actually happened, which is how tests prove a breaker stopped routing
    traffic here.
    """

    def __init__(self, service, plan: Optional[ChaosPlan] = None) -> None:
        self.inner = service
        self.plan = plan if plan is not None else ChaosPlan()
        self.enabled = True
        self.calls = 0
        self.faults: Dict[str, int] = {"raise": 0, "delay": 0, "hang": 0, "corrupt": 0}
        self._rng = random.Random(self.plan.seed)
        self._lock = threading.Lock()

    # -- injection core ------------------------------------------------------------

    def _draw(self) -> Optional[Tuple[str, float]]:
        """One seeded draw per call → ``(fault kind, sleep seconds)``, if any.

        The sleep duration for a variable delay (``plan.delay_ms``) is
        drawn here too, under the same lock and from the same RNG, so the
        whole fault schedule — kinds *and* durations — replays exactly
        from the seed.
        """
        with self._lock:
            self.calls += 1
            if not self.enabled:
                return None
            r = self._rng.random()
            plan = self.plan
            edge = plan.raise_rate
            if r < edge:
                kind = "raise"
            elif r < (edge := edge + plan.delay_rate):
                kind = "delay"
            elif r < (edge := edge + plan.hang_rate):
                kind = "hang"
            elif r < edge + plan.corrupt_rate:
                kind = "corrupt"
            else:
                return None
            self.faults[kind] += 1
            sleep_s = 0.0
            if kind == "delay":
                if plan.delay_ms is not None:
                    low, high = plan.delay_ms
                    sleep_s = self._rng.uniform(low, high) / 1000.0
                else:
                    sleep_s = plan.delay_s
            elif kind == "hang":
                sleep_s = plan.hang_s
            return kind, sleep_s

    def _misbehave(self) -> None:
        drawn = self._draw()
        if drawn is None:
            return
        kind, sleep_s = drawn
        if kind == "raise":
            raise InjectedFaultError(
                f"chaos: injected failure on {getattr(self.inner, 'label', 'member')!r}"
            )
        if kind in ("delay", "hang"):
            time.sleep(sleep_s)
        elif kind == "corrupt":
            raise PageCorruptionError("chaos: simulated checksum failure (corrupted storage)")

    # -- faulted read path ---------------------------------------------------------

    def box_sum(self, query: Box) -> float:
        self._misbehave()
        return self.inner.box_sum(query)

    def box_sum_batch(self, queries: Sequence[Box]):
        self._misbehave()
        return self.inner.box_sum_batch(queries)

    def batch(self, queries: Sequence[Box]):
        self._misbehave()
        return self.inner.batch(queries)

    def resolve_probe_values(self, identities):
        self._misbehave()
        return self.inner.resolve_probe_values(identities)

    # -- optionally faulted mutation path ------------------------------------------

    def insert(self, box: Box, value: float = 1.0) -> int:
        if self.plan.mutations:
            self._misbehave()
        return self.inner.insert(box, value)

    def delete(self, box: Box, value: float = 1.0) -> int:
        if self.plan.mutations:
            self._misbehave()
        return self.inner.delete(box, value)

    def bulk_load(self, objects) -> int:
        if self.plan.mutations:
            self._misbehave()
        return self.inner.bulk_load(objects)

    # -- transparent delegation ----------------------------------------------------

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def __enter__(self) -> "FaultyQueryService":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.inner.close()


class CrashableService:
    """An in-process stand-in for a killable worker process.

    Quacks like :class:`~repro.rpc.WorkerClient` for the liveness surface
    the repair path uses — :attr:`crashed`, :meth:`restart`, :meth:`ping`
    — without spawning a process, so supervisor tests can SIGKILL-and-
    respawn members deterministically and fast.  :meth:`kill` marks the
    member dead: every delegated call then raises
    :class:`~repro.core.errors.WorkerCrashedError`, exactly as a dead
    child's socket would.  :meth:`restart` builds a *fresh, empty* inner
    service through the factory — like a respawned worker, it holds
    nothing until a restore repopulates it.
    """

    def __init__(self, factory: Callable[[], object], initial=None) -> None:
        self._factory = factory
        self.inner = initial if initial is not None else factory()
        self._crashed = False
        self.restarts = 0

    @property
    def crashed(self) -> bool:
        return self._crashed

    def kill(self) -> None:
        """Simulate the worker process dying between calls."""
        self._crashed = True

    def restart(self) -> int:
        self.inner = self._factory()
        self._crashed = False
        self.restarts += 1
        return self.restarts

    def _check(self) -> None:
        if self._crashed:
            from ..core.errors import WorkerCrashedError

            raise WorkerCrashedError(
                f"worker {getattr(self.inner, 'label', 'member')!r} is dead; "
                "restart() + catch_up to revive"
            )

    def ping(self, payload: bytes = b"") -> bytes:
        self._check()
        return payload

    #: Attributes a real :class:`~repro.rpc.WorkerClient` answers from the
    #: parent side even when the child is dead (last-known epoch, the
    #: parent-maintained stream digest, identity, teardown).
    _SAFE = frozenset({"epoch", "state_digest", "label", "closed", "close"})

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        # Liveness first: a dead process answers nothing else, not even stats.
        if name not in self._SAFE:
            self._check()
        return getattr(self.inner, name)


class LostWriteService:
    """A member that silently *drops* some mutations — and lies about it.

    The failure mode poisoning cannot see: the call returns success (the
    inner service's current epoch) but nothing was applied, so the member
    diverges without any exception for the group to witness.  Only the
    stream-digest audit catches it — the member's digest freezes while
    the authority's advances.  Drops are drawn from a seeded RNG, so the
    divergence point replays exactly.

    Wrap *replicas*, never the primary: the group reports the first live
    member's epoch, and a primary whose epoch stops advancing would skew
    what callers observe before the audit ever runs.
    """

    def __init__(self, service, *, drop_rate: float = 1.0, seed: int = 0) -> None:
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError(f"drop_rate must be in [0, 1], got {drop_rate}")
        self.inner = service
        self.drop_rate = drop_rate
        self.enabled = True
        self.dropped = 0
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def _drop(self) -> bool:
        with self._lock:
            if not self.enabled or self._rng.random() >= self.drop_rate:
                return False
            self.dropped += 1
            return True

    def insert(self, box: Box, value: float = 1.0) -> int:
        if self._drop():
            return self.inner.epoch
        return self.inner.insert(box, value)

    def delete(self, box: Box, value: float = 1.0) -> int:
        if self._drop():
            return self.inner.epoch
        return self.inner.delete(box, value)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


def chaos_member_wrapper(plan: ChaosPlan, member: int = 0) -> Callable[[object, int, int], object]:
    """A ``service_wrapper`` for :class:`~repro.shard.ShardedService`.

    Wraps member ``member`` of *every* replica group in a
    :class:`FaultyQueryService`, decorrelating the groups by offsetting the
    plan's seed with the shard id (same cluster seed → same global fault
    schedule).  Other members are returned untouched.
    """

    def wrapper(service, shard_id: int, member_id: int):
        if member_id != member:
            return service
        return FaultyQueryService(service, plan.with_seed(plan.seed + 7919 * shard_id))

    return wrapper


def bitflip_injector(at_op: int = 1, seed: Optional[int] = None) -> FaultInjector:
    """A :class:`~repro.storage.faults.FaultInjector` armed for real corruption.

    For durable, file-backed shards: pass ``injector.opener`` as the
    storage ``opener`` and the ``at_op``-th mutating file operation lands
    with one bit flipped at a position drawn from ``random.Random(seed)``
    (see the seeded-determinism contract in :mod:`repro.storage.faults`).
    The shard's page checksums then surface the damage as
    :class:`~repro.core.errors.PageCorruptionError` on read — the same
    error :class:`FaultyQueryService` fakes for memory-backed shards — and
    the failover path treats both identically.
    """
    return FaultInjector(CrashPoint(at_op=at_op, mode="bitflip"), seed=seed)


__all__ = [
    "ChaosPlan",
    "CrashableService",
    "FaultyQueryService",
    "InjectedFaultError",
    "LostWriteService",
    "bitflip_injector",
    "chaos_member_wrapper",
]
