"""Failover-aware scatter-gather: the shard router over replica groups.

:class:`FailoverRouter` is deliberately thin.  All of the exactness
machinery — batch-wide corner sharing, extent pruning/covering, the
additive merge — lives in :class:`~repro.shard.router.ShardRouter` and
needs no change, because a :class:`~repro.resilience.group.ReplicaGroup`
duck-types the shard service surface the router speaks
(``resolve_probe_values``, ``batch``, ``index``): each *shard slot* simply
became a little cluster of interchangeable members, and the failover loop
inside the group decides which member actually answers.  What this class
adds is the policy wiring: a shared
:class:`~repro.resilience.config.ResilienceConfig` and the translation of
its ``partial_results`` flag into the router's ``allow_partial`` merge
mode (a dead group becomes an omitted contribution in
``shards_failed`` rather than a propagated
:class:`~repro.core.errors.ShardUnavailableError`).

:class:`~repro.shard.cluster.ShardedService` builds all of this itself
when given ``replicas``/``resilience``; instantiate a ``FailoverRouter``
directly when composing hand-built replica groups (as the chaos harness
and the resilience benchmark do).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..obs.registry import MetricsRegistry
from ..shard.router import ShardRouter
from .config import ResilienceConfig
from .group import ReplicaGroup


class FailoverRouter(ShardRouter):
    """A :class:`~repro.shard.router.ShardRouter` over replica groups."""

    def __init__(
        self,
        groups: Sequence[ReplicaGroup],
        *,
        config: Optional[ResilienceConfig] = None,
        executor=None,
        registry: Optional[MetricsRegistry] = None,
        label: str = "cluster",
    ) -> None:
        self.config = config if config is not None else ResilienceConfig()
        super().__init__(
            groups,
            executor=executor,
            registry=registry,
            label=label,
            allow_partial=self.config.partial_results,
        )

    @property
    def groups(self) -> Sequence[ReplicaGroup]:
        return self.shards


__all__ = ["FailoverRouter"]
