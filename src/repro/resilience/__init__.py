"""Fault-tolerant serving: replica groups, failover, breakers, chaos.

The paper's reduction is what makes all of this *exact*: a box-sum is an
additive merge of per-shard dominance sums, and every member of a replica
group owns the same objects, so failover between members — retries,
hedges, whole-member outages — can never change a bit of the answer.  The
package layers:

* :mod:`~repro.resilience.config` — :class:`BreakerConfig` /
  :class:`ResilienceConfig`, the whole failure policy as one frozen value;
* :mod:`~repro.resilience.breaker` — per-member circuit breakers
  (closed → open → half-open, plus forced-open for diverged replicas);
* :mod:`~repro.resilience.group` — :class:`ReplicaGroup`: synchronous
  mutation fan-out, breaker-gated failover with deadlines, backoff and
  hedged reads;
* :mod:`~repro.resilience.router` — :class:`FailoverRouter`: the exact
  scatter-gather router over groups;
* :mod:`~repro.resilience.partial` — :class:`PartialResult`: opt-in
  graceful degradation with the outage as an explicit error bound;
* :mod:`~repro.resilience.chaos` — deterministic fault injection
  (:class:`ChaosPlan` / :class:`FaultyQueryService`) driving
  :func:`repro.testing.check_failover`.
"""

from .breaker import CLOSED, FORCED_OPEN, HALF_OPEN, OPEN, CircuitBreaker
from .chaos import (
    ChaosPlan,
    CrashableService,
    FaultyQueryService,
    InjectedFaultError,
    LostWriteService,
    bitflip_injector,
    chaos_member_wrapper,
)
from .config import BreakerConfig, ResilienceConfig
from .group import ReplicaGroup
from .partial import PartialResult
from .router import FailoverRouter

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "ChaosPlan",
    "CLOSED",
    "CrashableService",
    "FailoverRouter",
    "FaultyQueryService",
    "FORCED_OPEN",
    "HALF_OPEN",
    "InjectedFaultError",
    "LostWriteService",
    "OPEN",
    "PartialResult",
    "ReplicaGroup",
    "ResilienceConfig",
    "bitflip_injector",
    "chaos_member_wrapper",
]
