"""Replica groups: a primary plus K synchronous replicas of one shard.

**Why failover can be exact.**  The dominance-sum decomposition is purely
additive (paper Lemma 1 / Theorem 2): a shard's contribution to any query
is a function of exactly the multiset of objects it owns.  A replica that
has applied the same mutation sequence owns the same multiset, so *any*
member of a group returns the bit-identical
:class:`~repro.service.service.ProbeSnapshot` (or monolithic batch) —
failover, retries and hedged reads can switch members mid-stream without
perturbing a single bit of the merged answer.

The group keeps that invariant two ways:

* **synchronous mutation fan-out** — one group-level mutation mutex
  serializes mutations, and each is applied to every live member in member
  order before the call returns, so all members always agree on the
  mutation sequence (each member's own writer lock orders it against that
  member's readers);
* **poisoning** — a member whose mutation *raises* may have half-applied
  it; there is no way to know, so the member is excluded (its breaker is
  forced open) rather than ever risking a wrong answer.  The group only
  fails a mutation when no live member accepted it.  One exception:
  :class:`~repro.core.errors.ServiceOverloadedError` is admission
  rejection — nothing was applied — so the mutation is *retried* on that
  member (``config.mutation_retries`` times, with the jittered backoff)
  before poisoning is considered.

Poisoning stopped being terminal when the group grew a replication log
(:mod:`repro.replog`).  With ``replication_log`` attached, every admitted
group mutation appends one logical record under the mutation mutex, and
three recovery verbs ride on it:

* :meth:`ReplicaGroup.catch_up` — restore a poisoned member from the
  newest checkpoint plus the log tail, audit it bit-for-bit against a
  live member with seeded probes, and return it to the serve rotation;
* :meth:`ReplicaGroup.add_member` — bootstrap a brand-new member to the
  group's head LSN *before* it ever serves;
* :meth:`ReplicaGroup.revive` — the operator override: un-poison without
  a restore (after e.g. a group-wide ``bulk_load`` equalized states).

Serving goes through the failover loop: pick the first member whose
circuit breaker admits traffic (primary first — replicas are cache-warm
spares, not load balancing), run the call under the configured per-attempt
deadline, and on failure record the outcome, back off with seeded jitter
and try the next healthy member, up to ``max_attempts``.  With
``hedge_delay_s`` set, a read still pending after that delay triggers a
concurrent second attempt on the next healthy member and the first answer
wins — both are exact, so hedging is pure tail-latency insurance.  When
every avenue is exhausted the group raises
:class:`~repro.core.errors.ShardUnavailableError`; what happens then
(propagate, or degrade to a partial result) is the router's decision, not
the group's.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait as futures_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import (
    NotSupportedError,
    ReplicaDivergedError,
    ServiceOverloadedError,
    ShardUnavailableError,
    WorkerCrashedError,
)
from ..core.geometry import Box
from ..obs import trace as _trace
from ..obs.registry import MetricsRegistry, get_registry
from .breaker import FORCED_OPEN, OPEN, CircuitBreaker
from .config import ResilienceConfig


class ReplicaGroup:
    """One shard served by interchangeable members behind circuit breakers.

    Quacks like a :class:`~repro.service.service.QueryService` for every
    verb the cluster and router use (``insert``/``delete``/``bulk_load``,
    ``batch``/``box_sum_batch``/``resolve_probe_values``, ``epoch``,
    ``stats``, ``close``), so the sharded layers work over groups and bare
    services uniformly.

    Parameters
    ----------
    shard_id:
        The shard this group serves (for errors, metrics and traces).
    members:
        The member services; ``members[0]`` is the primary.  All must front
        *equivalent* indices (same dims/backend/reduction) holding the same
        objects — the group preserves that equivalence, it cannot create it.
    config:
        The :class:`~repro.resilience.config.ResilienceConfig` failover
        policy.
    replication_log:
        An optional :class:`~repro.replog.ReplicationLog`.  The group
        appends one record per admitted mutation (members' own services
        must *not* carry an oplog, or mutations would double-log) and the
        recovery verbs — ``catch_up``/``add_member``/``recover_to`` —
        become available.
    member_factory:
        Zero-argument callable building a fresh, empty member service;
        lets ``add_member()`` and the cluster's replica seeding mint
        members without the caller plumbing index construction through.
    clock / sleep:
        Injectable time sources (breaker cooldowns, backoff) so tests and
        the chaos torture loop stay deterministic and fast.
    """

    def __init__(
        self,
        shard_id: int,
        members: Sequence[object],
        *,
        config: Optional[ResilienceConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        label: str = "cluster",
        replication_log=None,
        member_factory: Optional[Callable[[], object]] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not members:
            raise ValueError("a replica group needs at least one member")
        self.shard_id = shard_id
        self.members: List[object] = list(members)
        self.config = config if config is not None else ResilienceConfig()
        self.label = label
        self.replication_log = replication_log
        self._member_factory = member_factory
        self._clock = clock
        self._sleep = sleep
        self._rng = random.Random(self.config.seed * 1_000_003 + shard_id)
        self._rng_lock = threading.Lock()
        self._mutation_lock = threading.Lock()
        self._poisoned: List[bool] = [False] * len(self.members)
        #: highest LSN each member has applied (tracks the log head while
        #: live, freezes at the poisoning point — that gap is the lag)
        head = replication_log.head_lsn if replication_log is not None else 0
        self._applied_lsn: List[int] = [head] * len(self.members)
        self._stats_lock = threading.Lock()
        self._counts: Dict[str, float] = {
            "attempts": 0.0,
            "failures": 0.0,
            "timeouts": 0.0,
            "failovers": 0.0,
            "hedges": 0.0,
            "hedge_wins": 0.0,
            "unavailable": 0.0,
            "poisoned": 0.0,
            "retries": 0.0,
            "revivals": 0.0,
            "catchups": 0.0,
            "digest_audits": 0.0,
            "digest_mismatches": 0.0,
        }
        registry = registry if registry is not None else get_registry()
        self._registry = registry
        self._m_attempts = registry.counter(
            "repro_resilience_attempts",
            "failover serve attempts, by outcome (ok/error/timeout)",
        )
        self._m_failovers = registry.counter(
            "repro_resilience_failovers", "serves that needed more than one attempt"
        )
        self._m_hedges = registry.counter(
            "repro_resilience_hedges", "hedged reads dispatched, by outcome (won/lost)"
        )
        self._m_transitions = registry.counter(
            "repro_resilience_breaker_transitions",
            "circuit breaker state transitions, by target state",
        )
        self._m_open = registry.gauge(
            "repro_resilience_breaker_open", "1 when a member's breaker is not closed"
        )
        self._m_unavailable = registry.counter(
            "repro_resilience_unavailable", "serves that exhausted every member"
        )
        self._m_retries = registry.counter(
            "repro_resilience_mutation_retries",
            "mutation attempts retried after admission rejection",
        )
        self._m_revivals = registry.counter(
            "repro_resilience_revivals", "poisoned members returned to rotation"
        )
        self._m_catchups = registry.counter(
            "repro_resilience_catchups", "log-driven member restores, by outcome"
        )
        self._m_lag = registry.gauge(
            "repro_resilience_replica_lag",
            "log records the member has not applied (head LSN - applied LSN)",
        )
        self._m_digest_mismatches = registry.counter(
            "repro_resilience_digest_mismatches",
            "live members poisoned because their stream digest diverged from the log",
        )
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(
                self.config.breaker,
                clock=clock,
                on_transition=self._make_transition_hook(mid),
            )
            for mid in range(len(self.members))
        ]
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()

    # -- identity / pass-throughs ---------------------------------------------------

    @property
    def primary(self) -> object:
        """The primary member (reference for planning; may be poisoned)."""
        return self.members[0]

    @property
    def index(self) -> object:
        """The primary's index — the router's *planning* reference only.

        Probe plans and reassembly are data-independent computations, so
        the reference stays valid even when the primary itself is down.
        """
        return self.members[0].index

    @property
    def num_members(self) -> int:
        return len(self.members)

    @property
    def epoch(self) -> int:
        """The first live member's epoch (all live members agree)."""
        for mid, member in enumerate(self.members):
            if not self._poisoned[mid]:
                return member.epoch
        return self.members[0].epoch

    @property
    def live_members(self) -> Tuple[int, ...]:
        """Member ids not poisoned (breakers may still gate them)."""
        return tuple(mid for mid in range(len(self.members)) if not self._poisoned[mid])

    def is_poisoned(self, mid: int) -> bool:
        """True when member ``mid`` is excluded from the rotation."""
        return self._poisoned[mid]

    def replica_lag(self, mid: int) -> int:
        """Log records member ``mid`` has not applied (0 without a log)."""
        if self.replication_log is None:
            return 0
        return self.replication_log.head_lsn - self._applied_lsn[mid]

    @property
    def available(self) -> bool:
        """True when some member could serve a call *right now*.

        A member counts when it is not poisoned and its breaker is not
        open — the cheap signal serving uses to decide whether a batch
        heading at this group is doomed (and worth degrading pre-emptively)
        without issuing a probe.
        """
        return any(
            not self._poisoned[mid] and self.breakers[mid].state not in (OPEN, FORCED_OPEN)
            for mid in range(len(self.members))
        )

    # -- mutations (synchronous fan-out) ---------------------------------------------

    def insert(self, box: Box, value: float = 1.0) -> int:
        from ..replog.records import InsertOp

        return self._mutate(
            lambda m: m.insert(box, value),
            op="insert",
            record=InsertOp(box, float(value)),
        )

    def delete(self, box: Box, value: float = 1.0) -> int:
        from ..replog.records import DeleteOp

        return self._mutate(
            lambda m: m.delete(box, value),
            op="delete",
            record=DeleteOp(box, float(value)),
        )

    def bulk_load(self, objects) -> int:
        # Materialized once: fanning a generator out would hand the first
        # member everything and the rest nothing.  A group-wide bulk_load
        # equalizes member states, but poisoning stays sticky by design —
        # return via revive()/catch_up() only.
        from ..replog.records import BulkLoadOp

        objects = [(box, float(value)) for box, value in objects]
        return self._mutate(
            lambda m: m.bulk_load(objects),
            op="bulk_load",
            record=BulkLoadOp(tuple(objects)),
        )

    def set_meta(self, key: str, blob: bytes) -> int:
        from ..replog.records import SetMetaOp

        return self._mutate(
            lambda m: m.set_meta(key, blob),
            op="set_meta",
            record=SetMetaOp(key, bytes(blob)),
        )

    def _mutate(self, fn: Callable[[object], int], op: str, record=None) -> int:
        with self._mutation_lock:
            epoch: Optional[int] = None
            last_error: Optional[BaseException] = None
            accepted: List[int] = []
            for mid, member in enumerate(self.members):
                if self._poisoned[mid]:
                    continue
                overload_attempts = 0
                while True:
                    try:
                        epoch = fn(member)
                        accepted.append(mid)
                        break
                    except ServiceOverloadedError as exc:
                        # Admission rejection is fail-fast: nothing was
                        # applied, so retrying cannot fork the member's
                        # state.  Only exhausted retries poison.
                        last_error = exc
                        if overload_attempts >= self.config.mutation_retries:
                            self._poison(mid, op, exc)
                            break
                        overload_attempts += 1
                        self._note("retries")
                        self._m_retries.inc(label=self.label)
                        self._backoff(overload_attempts)
                    except Exception as exc:  # noqa: BLE001 — may be half-applied
                        last_error = exc
                        self._poison(mid, op, exc)
                        break
            if epoch is None:
                raise ShardUnavailableError(
                    f"no live member of shard {self.shard_id} accepted {op}",
                    shard=self.shard_id,
                    members_tried=tuple(range(len(self.members))),
                ) from last_error
            # The record is appended only after at least one member
            # accepted, still under the mutation mutex: the log is exactly
            # the admitted mutation sequence, in order, nothing else.
            if self.replication_log is not None and record is not None:
                lsn = self.replication_log.record(record)
                for mid in accepted:
                    self._applied_lsn[mid] = lsn
                self._update_lag()
            return epoch

    def _poison(self, mid: int, op: str, exc: BaseException) -> None:
        """Exclude a member whose mutation may be half-applied (idempotent)."""
        if self._poisoned[mid]:
            return
        self._poisoned[mid] = True
        self.breakers[mid].force_open()
        with self._stats_lock:
            self._counts["poisoned"] += 1
        tracer = _trace._ACTIVE
        if tracer is not None:
            tracer.event(
                "resilience_poisoned",
                shard=self.shard_id,
                member=mid,
                op=op,
                error=type(exc).__name__,
            )

    # -- recovery: revive / catch up / bootstrap ---------------------------------------

    def revive(self, mid: int) -> bool:
        """Operator override: return a poisoned member to the rotation as-is.

        The caller asserts the member's state equals the group's (e.g. a
        group-wide ``bulk_load`` just equalized everyone).  No restore, no
        audit — prefer :meth:`catch_up` when a replication log is
        attached.  Returns False when the member was not poisoned.
        """
        with self._mutation_lock:
            return self._revive_locked(mid)

    def _revive_locked(self, mid: int) -> bool:
        if not self._poisoned[mid]:
            return False
        self._poisoned[mid] = False
        self.breakers[mid].reset()
        if self.replication_log is not None:
            self._applied_lsn[mid] = self.replication_log.head_lsn
            self._update_lag()
        with self._stats_lock:
            self._counts["revivals"] += 1
        self._m_revivals.inc(label=self.label)
        tracer = _trace._ACTIVE
        if tracer is not None:
            tracer.event("resilience_revived", shard=self.shard_id, member=mid)
        return True

    def catch_up(self, mid: int, *, audit_probes: int = 16):
        """Restore a poisoned member from checkpoint + log tail and revive it.

        Runs under the mutation mutex, so the restore target (the head
        LSN) cannot move mid-restore.  Before the member re-enters the
        rotation it must answer ``audit_probes`` seeded box-sums — and
        report the same epoch — bit-identically to a live member; a
        mismatch raises
        :class:`~repro.core.errors.ReplicaDivergedError` and the member
        stays poisoned.  When no live reference exists the audit is
        vacuous (the log *is* the only authority left).

        Returns the :class:`~repro.replog.RestoreReport`, or None when
        the member was not poisoned (nothing to do).
        """
        if self.replication_log is None:
            raise NotSupportedError(
                f"shard {self.shard_id} has no replication log; "
                "catch_up needs one to restore from"
            )
        tracer = _trace._ACTIVE
        if tracer is None:
            return self._catch_up_inner(mid, audit_probes, None)
        with tracer.span("replog.catchup", shard=self.shard_id, member=mid, label=self.label):
            return self._catch_up_inner(mid, audit_probes, tracer)

    def _catch_up_inner(self, mid: int, audit_probes: int, tracer):
        with self._mutation_lock:
            if not self._poisoned[mid]:
                return None
            lag_before = self.replication_log.head_lsn - self._applied_lsn[mid]
            try:
                # A crashed process worker (RPC transport) must be respawned
                # before the log can restore into it: restart() yields a
                # fresh empty child, restore_into repopulates it, and the
                # audit below proves the revival bit-exact.
                member = self.members[mid]
                restart = getattr(member, "restart", None)
                if restart is not None and getattr(member, "crashed", False):
                    restart()
                report = self.replication_log.restore_into(self.members[mid])
                self._applied_lsn[mid] = report.upto_lsn
                reference = next(
                    (
                        rid
                        for rid in range(len(self.members))
                        if rid != mid and not self._poisoned[rid]
                    ),
                    None,
                )
                if reference is not None:
                    self._audit(mid, reference, audit_probes)
            except Exception:
                self._m_catchups.inc(outcome="failed", label=self.label)
                raise
            self._revive_locked(mid)
        with self._stats_lock:
            self._counts["catchups"] += 1
        self._m_catchups.inc(outcome="ok", label=self.label)
        if tracer is not None:
            tracer.event(
                "replog_caught_up",
                shard=self.shard_id,
                member=mid,
                lag=lag_before,
                tail=report.tail_records,
            )
        return report

    def _audit(self, mid: int, reference: int, probes: int) -> None:
        """Seeded bit-exactness probe: restored member vs a live member.

        Queries are drawn from an RNG seeded by (config seed, shard, head
        LSN) over the logical state's extent, compared with ``==`` — the
        additive decomposition admits no tolerance.  Called under the
        mutation mutex so no mutation can interleave the two reads.
        """
        member, live = self.members[mid], self.members[reference]
        if member.epoch != live.epoch:
            raise ReplicaDivergedError(
                f"shard {self.shard_id} member {mid}: epoch {member.epoch} != "
                f"live member {reference}'s {live.epoch} after restore"
            )
        if probes <= 0:
            return
        extent = self.replication_log.extent()
        if extent is None:
            return
        rng = random.Random(
            (self.config.seed * 7_368_787 + self.shard_id) * 31
            + self.replication_log.head_lsn
        )
        pad = [max(1.0, extent.side(d)) * 0.25 for d in range(extent.dims)]
        queries = []
        for _ in range(probes):
            corners = [
                sorted(
                    rng.uniform(extent.low[d] - pad[d], extent.high[d] + pad[d])
                    for _c in range(2)
                )
                for d in range(extent.dims)
            ]
            queries.append(Box([c[0] for c in corners], [c[1] for c in corners]))
        restored = member.box_sum_batch(queries)
        expected = live.box_sum_batch(queries)
        for query, got, want in zip(queries, restored, expected):
            if got != want:
                raise ReplicaDivergedError(
                    f"shard {self.shard_id} member {mid} diverged after "
                    f"catch-up: box_sum({query}) = {got!r}, live member "
                    f"{reference} says {want!r}"
                )

    def catch_up_all(self, *, audit_probes: int = 16) -> List[int]:
        """Catch up every poisoned member; returns the ids revived."""
        revived = []
        for mid in range(len(self.members)):
            if self._poisoned[mid]:
                if self.catch_up(mid, audit_probes=audit_probes) is not None:
                    revived.append(mid)
        return revived

    def repair(self, mid: int, *, audit_probes: int = 16):
        """One-verb remedy for a dead *or* poisoned member.

        A crashed process worker whose death no mutation has witnessed yet
        (SIGKILL between calls) is first poisoned — excluding it from the
        rotation exactly as a failed mutation would — and then restored
        through :meth:`catch_up`, whose restart path respawns it.  Members
        that are neither crashed nor poisoned are left alone (returns
        None).  Returns the :class:`~repro.replog.RestoreReport`.
        """
        member = self.members[mid]
        if not self._poisoned[mid] and getattr(member, "crashed", False):
            with self._mutation_lock:
                # Re-check under the mutex: a concurrent mutation may have
                # poisoned it (or a concurrent repair revived it) already.
                if not self._poisoned[mid] and getattr(member, "crashed", False):
                    self._poison(
                        mid,
                        "repair",
                        WorkerCrashedError(
                            f"shard {self.shard_id} member {mid}: worker process found dead"
                        ),
                    )
        if not self._poisoned[mid]:
            return None
        return self.catch_up(mid, audit_probes=audit_probes)

    # -- divergence audit ---------------------------------------------------------------

    def member_digests(self) -> List[Optional[int]]:
        """Each member's stream digest (None where the surface is missing)."""
        return [getattr(member, "state_digest", None) for member in self.members]

    def audit_digests(self) -> List[int]:
        """Compare every live member's stream digest against the authority.

        With a replication log the authority is the log's folded-state
        digest (``digest(log) == digest(folded state)`` by construction);
        without one it is the strict-majority digest among live members
        (no strict majority ⇒ the audit abstains — two disagreeing members
        cannot arbitrate themselves).  A live member that disagrees has
        lost or misapplied a write: it is poisoned on the spot, *before*
        any query can fail over onto it, and returned for the supervisor
        to repair.  Runs under the mutation mutex so no mutation can
        interleave the reads.
        """
        with self._mutation_lock:
            with self._stats_lock:
                self._counts["digest_audits"] += 1
            if self.replication_log is not None:
                authority: Optional[int] = self.replication_log.digest
            else:
                votes: Dict[int, int] = {}
                for mid in range(len(self.members)):
                    if self._poisoned[mid]:
                        continue
                    digest = getattr(self.members[mid], "state_digest", None)
                    if digest is not None:
                        votes[digest] = votes.get(digest, 0) + 1
                authority = None
                if votes:
                    best = max(votes, key=lambda d: votes[d])
                    if votes[best] * 2 > sum(votes.values()):
                        authority = best
            if authority is None:
                return []
            diverged: List[int] = []
            for mid in range(len(self.members)):
                if self._poisoned[mid]:
                    continue
                digest = getattr(self.members[mid], "state_digest", None)
                if digest is None or digest == authority:
                    continue
                self._poison(
                    mid,
                    "digest_audit",
                    ReplicaDivergedError(
                        f"shard {self.shard_id} member {mid}: stream digest "
                        f"0x{digest:016x} != authority 0x{authority:016x}"
                    ),
                )
                diverged.append(mid)
            if diverged:
                with self._stats_lock:
                    self._counts["digest_mismatches"] += len(diverged)
                self._m_digest_mismatches.inc(len(diverged), label=self.label)
            return diverged

    def add_member(self, member: Optional[object] = None) -> int:
        """Bootstrap a new member to the head LSN and add it to the rotation.

        The member (built by ``member_factory`` when not given) is
        restored from checkpoint + log tail *before* it becomes visible
        to the serve loop, so it can never answer from a half-bootstrapped
        state.  Returns the new member id.
        """
        if self.replication_log is None:
            raise NotSupportedError(
                f"shard {self.shard_id} has no replication log; "
                "a new member cannot be seeded without one"
            )
        if member is None:
            if self._member_factory is None:
                raise NotSupportedError(f"shard {self.shard_id} has no member_factory configured")
            member = self._member_factory()
        with self._mutation_lock:
            mid = len(self.members)
            report = self.replication_log.restore_into(member)
            # Bookkeeping lists grow before members: the serve loop sizes
            # its scan off len(self.members), so a concurrent reader must
            # never see a member whose breaker does not exist yet.
            self.breakers.append(
                CircuitBreaker(
                    self.config.breaker,
                    clock=self._clock,
                    on_transition=self._make_transition_hook(mid),
                )
            )
            self._poisoned.append(False)
            self._applied_lsn.append(report.upto_lsn)
            self.members.append(member)
            self._update_lag()
        tracer = _trace._ACTIVE
        if tracer is not None:
            tracer.event(
                "resilience_member_added",
                shard=self.shard_id,
                member=mid,
                lsn=report.upto_lsn,
            )
        return mid

    def checkpoint(self):
        """Snapshot the replication log at a mutation boundary.

        Taken under the mutation mutex, so the checkpoint's LSN/epoch pair
        reflects a fully fanned-out mutation — exactly the state a member
        restored from it will share with every live member.
        """
        if self.replication_log is None:
            raise NotSupportedError(f"shard {self.shard_id} has no replication log to checkpoint")
        with self._mutation_lock:
            return self.replication_log.checkpoint(self.epoch)

    def recover_to(self, lsn: int, index_factory: Optional[Callable[[], object]] = None):
        """Point-in-time recovery of this shard's history (see
        :meth:`~repro.replog.ReplicationLog.recover_to`)."""
        if self.replication_log is None:
            raise NotSupportedError(f"shard {self.shard_id} has no replication log to recover from")
        return self.replication_log.recover_to(lsn, index_factory)

    def _update_lag(self) -> None:
        head = self.replication_log.head_lsn
        for mid in range(len(self.members)):
            self._m_lag.set(
                float(head - self._applied_lsn[mid]),
                shard=str(self.shard_id),
                member=str(mid),
                label=self.label,
            )

    # -- serving (failover loop) -----------------------------------------------------

    def resolve_probe_values(self, identities):
        return self._serve(lambda m: m.resolve_probe_values(identities), op="probes")

    def batch(self, queries: Sequence[Box]):
        return self._serve(lambda m: m.batch(queries), op="batch")

    def box_sum_batch(self, queries: Sequence[Box]) -> List[float]:
        return self.batch(queries).results

    def box_sum(self, query: Box) -> float:
        return self.batch([query]).results[0]

    def _serve(self, call: Callable[[object], object], op: str):
        tracer = _trace._ACTIVE
        if tracer is None:
            return self._serve_inner(call, op, None)
        with tracer.span("resilience.failover", shard=self.shard_id, label=self.label, op=op):
            return self._serve_inner(call, op, tracer)

    def _serve_inner(self, call: Callable[[object], object], op: str, tracer):
        cfg = self.config
        tried: List[int] = []
        last_error: Optional[BaseException] = None
        for attempt in range(cfg.max_attempts):
            mid = self._pick_member(tried)
            if mid is None:
                break
            tried.append(mid)
            if attempt > 0:
                self._note("failovers")
                self._m_failovers.inc(label=self.label)
                if tracer is not None:
                    tracer.event(
                        "resilience_failover",
                        shard=self.shard_id,
                        member=mid,
                        attempt=attempt + 1,
                    )
                self._backoff(attempt)
            try:
                result = self._attempt(call, mid, tried)
            except FutureTimeoutError as exc:
                last_error = exc
                self.breakers[mid].record_failure()
                self._note("attempts", "timeouts")
                self._m_attempts.inc(outcome="timeout", label=self.label)
                if tracer is not None:
                    tracer.event("resilience_timeout", shard=self.shard_id, member=mid)
                continue
            except Exception as exc:  # noqa: BLE001 — any member failure fails over
                last_error = exc
                self.breakers[mid].record_failure()
                self._note("attempts", "failures")
                self._m_attempts.inc(outcome="error", label=self.label)
                if tracer is not None:
                    tracer.event(
                        "resilience_attempt_failed",
                        shard=self.shard_id,
                        member=mid,
                        error=type(exc).__name__,
                    )
                continue
            self.breakers[mid].record_success()
            self._note("attempts")
            self._m_attempts.inc(outcome="ok", label=self.label)
            return result
        self._note("unavailable")
        self._m_unavailable.inc(label=self.label)
        raise ShardUnavailableError(
            f"shard {self.shard_id} has no member able to serve {op}",
            shard=self.shard_id,
            attempts=len(tried),
            members_tried=tuple(tried),
        ) from last_error

    def _pick_member(self, tried: Sequence[int]) -> Optional[int]:
        """First breaker-admitted member, preferring ones not yet tried."""
        admitted = [
            mid
            for mid in range(len(self.members))
            if not self._poisoned[mid] and self.breakers[mid].allow()
        ]
        if not admitted:
            return None
        fresh = [mid for mid in admitted if mid not in tried]
        return fresh[0] if fresh else admitted[0]

    def _backoff(self, attempt: int) -> None:
        cfg = self.config
        if cfg.backoff_base_s <= 0:
            return
        base = cfg.backoff_base_s * (cfg.backoff_multiplier ** (attempt - 1))
        with self._rng_lock:
            jitter = 1.0 + cfg.backoff_jitter * self._rng.uniform(-1.0, 1.0)
        self._sleep(base * jitter)

    # -- one attempt: direct, deadlined, or hedged -------------------------------------

    def _attempt(self, call, mid: int, tried: Sequence[int]):
        cfg = self.config
        if cfg.deadline_s is None and cfg.hedge_delay_s is None:
            # Fully synchronous: deterministic, zero thread overhead.  A
            # hung member blocks here — deadlines are what buy preemption.
            return call(self.members[mid])
        if cfg.hedge_delay_s is not None:
            return self._attempt_hedged(call, mid, tried)
        future = self._pool().submit(call, self.members[mid])
        return future.result(timeout=cfg.deadline_s)

    def _attempt_hedged(self, call, mid: int, tried: Sequence[int]):
        """Race the member against a delayed hedge on the next healthy one.

        The winner's breaker records the success; a losing future that
        later completes records its own outcome through a done-callback,
        so abandoned attempts still feed the health view.
        """
        cfg = self.config
        pool = self._pool()
        start = self._clock()
        end = None if cfg.deadline_s is None else start + cfg.deadline_s
        pending: Dict[Future, int] = {pool.submit(call, self.members[mid]): mid}
        hedged = False
        last_error: Optional[BaseException] = None
        while pending:
            if not hedged:
                timeout = cfg.hedge_delay_s
                if end is not None:
                    timeout = min(timeout, max(0.0, end - self._clock()))
            elif end is None:
                timeout = None
            else:
                timeout = max(0.0, end - self._clock())
            done, _ = futures_wait(list(pending), timeout=timeout, return_when=FIRST_COMPLETED)
            for future in done:
                done_mid = pending.pop(future)
                try:
                    result = future.result()
                except Exception as exc:  # noqa: BLE001
                    last_error = exc
                    self.breakers[done_mid].record_failure()
                    continue
                self.breakers[done_mid].record_success()
                if hedged:
                    won_by_hedge = done_mid != mid
                    self._note("hedge_wins" if won_by_hedge else "hedges", None)
                    self._m_hedges.inc(outcome="won" if won_by_hedge else "lost", label=self.label)
                self._abandon(pending)
                return result
            if done:
                continue  # completed futures all failed; keep waiting on the rest
            # Nothing completed within the window: hedge once, then the
            # remaining window is bounded by the attempt deadline.
            if not hedged:
                hedged = True
                alt = self._hedge_target(mid, tried)
                if alt is not None:
                    self._note("hedges")
                    pending[pool.submit(call, self.members[alt])] = alt
                    continue
                if end is None:
                    continue  # no hedge target, no deadline: wait it out
            if end is not None and self._clock() >= end:
                self._abandon(pending)
                raise FutureTimeoutError(
                    f"shard {self.shard_id}: no member answered within "
                    f"{cfg.deadline_s}s"
                )
        if last_error is not None:
            raise last_error
        raise FutureTimeoutError(f"shard {self.shard_id}: hedged attempt drained")

    def _hedge_target(self, mid: int, tried: Sequence[int]) -> Optional[int]:
        for alt in range(len(self.members)):
            if alt == mid or self._poisoned[alt] or alt in tried:
                continue
            if self.breakers[alt].allow():
                return alt
        return None

    def _abandon(self, pending: Dict[Future, int]) -> None:
        """Record abandoned futures' eventual outcomes without waiting."""
        for future, mid in pending.items():
            breaker = self.breakers[mid]

            def _done(f: Future, breaker=breaker) -> None:
                if f.cancelled():
                    return
                if f.exception() is not None:
                    breaker.record_failure()
                else:
                    breaker.record_success()

            if not future.cancel():
                future.add_done_callback(_done)

    def _pool(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=max(2, len(self.members)),
                    thread_name_prefix=f"repro-rg{self.shard_id}",
                )
            return self._executor

    # -- bookkeeping -------------------------------------------------------------------

    def _make_transition_hook(self, mid: int) -> Callable[[str, str], None]:
        def hook(old: str, new: str) -> None:
            self._m_transitions.inc(to=new, label=self.label)
            self._m_open.set(
                0.0 if new == "closed" else 1.0,
                shard=str(self.shard_id),
                member=str(mid),
                label=self.label,
            )

        return hook

    def _note(self, *keys: Optional[str]) -> None:
        with self._stats_lock:
            for key in keys:
                if key is not None:
                    self._counts[key] += 1

    def stats(self) -> Dict[str, object]:
        """Failover counters plus per-member breaker/health snapshots."""
        with self._stats_lock:
            out: Dict[str, object] = dict(self._counts)
        out["members"] = len(self.members)
        out["member_states"] = [
            "poisoned" if self._poisoned[mid] else self.breakers[mid].state
            for mid in range(len(self.members))
        ]
        out["breaker_trips"] = [breaker.trips for breaker in self.breakers]
        if self.replication_log is not None:
            head = self.replication_log.head_lsn
            out["head_lsn"] = head
            out["applied_lsn"] = list(self._applied_lsn)
            out["replica_lag"] = [head - lsn for lsn in self._applied_lsn]
            out["log_digest"] = self.replication_log.digest
        out["member_digests"] = self.member_digests()
        return out

    def member_stats(self) -> List[Dict[str, float]]:
        """Each member service's own ``stats()`` snapshot, in member order."""
        return [member.stats() for member in self.members]

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Close every member (each drains its accepted requests)."""
        for member in self.members:
            member.close()
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    @property
    def closed(self) -> bool:
        return all(getattr(member, "closed", True) for member in self.members)

    def __enter__(self) -> "ReplicaGroup":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


__all__ = ["ReplicaGroup", "FORCED_OPEN"]
