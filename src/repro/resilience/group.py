"""Replica groups: a primary plus K synchronous replicas of one shard.

**Why failover can be exact.**  The dominance-sum decomposition is purely
additive (paper Lemma 1 / Theorem 2): a shard's contribution to any query
is a function of exactly the multiset of objects it owns.  A replica that
has applied the same mutation sequence owns the same multiset, so *any*
member of a group returns the bit-identical
:class:`~repro.service.service.ProbeSnapshot` (or monolithic batch) —
failover, retries and hedged reads can switch members mid-stream without
perturbing a single bit of the merged answer.

The group keeps that invariant two ways:

* **synchronous mutation fan-out** — one group-level mutation mutex
  serializes mutations, and each is applied to every live member in member
  order before the call returns, so all members always agree on the
  mutation sequence (each member's own writer lock orders it against that
  member's readers);
* **poisoning** — a member whose mutation *raises* may have half-applied
  it; there is no way to know, so the member is permanently excluded
  (its breaker is forced open) rather than ever risking a wrong answer.
  The group only fails a mutation when no live member accepted it.

Serving goes through the failover loop: pick the first member whose
circuit breaker admits traffic (primary first — replicas are cache-warm
spares, not load balancing), run the call under the configured per-attempt
deadline, and on failure record the outcome, back off with seeded jitter
and try the next healthy member, up to ``max_attempts``.  With
``hedge_delay_s`` set, a read still pending after that delay triggers a
concurrent second attempt on the next healthy member and the first answer
wins — both are exact, so hedging is pure tail-latency insurance.  When
every avenue is exhausted the group raises
:class:`~repro.core.errors.ShardUnavailableError`; what happens then
(propagate, or degrade to a partial result) is the router's decision, not
the group's.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait as futures_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import ShardUnavailableError
from ..core.geometry import Box
from ..obs import trace as _trace
from ..obs.registry import MetricsRegistry, get_registry
from .breaker import FORCED_OPEN, CircuitBreaker
from .config import ResilienceConfig


class ReplicaGroup:
    """One shard served by interchangeable members behind circuit breakers.

    Quacks like a :class:`~repro.service.service.QueryService` for every
    verb the cluster and router use (``insert``/``delete``/``bulk_load``,
    ``batch``/``box_sum_batch``/``resolve_probe_values``, ``epoch``,
    ``stats``, ``close``), so the sharded layers work over groups and bare
    services uniformly.

    Parameters
    ----------
    shard_id:
        The shard this group serves (for errors, metrics and traces).
    members:
        The member services; ``members[0]`` is the primary.  All must front
        *equivalent* indices (same dims/backend/reduction) holding the same
        objects — the group preserves that equivalence, it cannot create it.
    config:
        The :class:`~repro.resilience.config.ResilienceConfig` failover
        policy.
    clock / sleep:
        Injectable time sources (breaker cooldowns, backoff) so tests and
        the chaos torture loop stay deterministic and fast.
    """

    def __init__(
        self,
        shard_id: int,
        members: Sequence[object],
        *,
        config: Optional[ResilienceConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        label: str = "cluster",
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not members:
            raise ValueError("a replica group needs at least one member")
        self.shard_id = shard_id
        self.members: List[object] = list(members)
        self.config = config if config is not None else ResilienceConfig()
        self.label = label
        self._clock = clock
        self._sleep = sleep
        self._rng = random.Random(self.config.seed * 1_000_003 + shard_id)
        self._rng_lock = threading.Lock()
        self._mutation_lock = threading.Lock()
        self._poisoned: List[bool] = [False] * len(self.members)
        self._stats_lock = threading.Lock()
        self._counts: Dict[str, float] = {
            "attempts": 0.0,
            "failures": 0.0,
            "timeouts": 0.0,
            "failovers": 0.0,
            "hedges": 0.0,
            "hedge_wins": 0.0,
            "unavailable": 0.0,
            "poisoned": 0.0,
        }
        registry = registry if registry is not None else get_registry()
        self._registry = registry
        self._m_attempts = registry.counter(
            "repro_resilience_attempts",
            "failover serve attempts, by outcome (ok/error/timeout)",
        )
        self._m_failovers = registry.counter(
            "repro_resilience_failovers", "serves that needed more than one attempt"
        )
        self._m_hedges = registry.counter(
            "repro_resilience_hedges", "hedged reads dispatched, by outcome (won/lost)"
        )
        self._m_transitions = registry.counter(
            "repro_resilience_breaker_transitions",
            "circuit breaker state transitions, by target state",
        )
        self._m_open = registry.gauge(
            "repro_resilience_breaker_open", "1 when a member's breaker is not closed"
        )
        self._m_unavailable = registry.counter(
            "repro_resilience_unavailable", "serves that exhausted every member"
        )
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(
                self.config.breaker,
                clock=clock,
                on_transition=self._make_transition_hook(mid),
            )
            for mid in range(len(self.members))
        ]
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()

    # -- identity / pass-throughs ---------------------------------------------------

    @property
    def primary(self) -> object:
        """The primary member (reference for planning; may be poisoned)."""
        return self.members[0]

    @property
    def index(self) -> object:
        """The primary's index — the router's *planning* reference only.

        Probe plans and reassembly are data-independent computations, so
        the reference stays valid even when the primary itself is down.
        """
        return self.members[0].index

    @property
    def num_members(self) -> int:
        return len(self.members)

    @property
    def epoch(self) -> int:
        """The first live member's epoch (all live members agree)."""
        for mid, member in enumerate(self.members):
            if not self._poisoned[mid]:
                return member.epoch
        return self.members[0].epoch

    @property
    def live_members(self) -> Tuple[int, ...]:
        """Member ids not poisoned (breakers may still gate them)."""
        return tuple(
            mid for mid in range(len(self.members)) if not self._poisoned[mid]
        )

    # -- mutations (synchronous fan-out) ---------------------------------------------

    def insert(self, box: Box, value: float = 1.0) -> int:
        return self._mutate(lambda m: m.insert(box, value), op="insert")

    def delete(self, box: Box, value: float = 1.0) -> int:
        return self._mutate(lambda m: m.delete(box, value), op="delete")

    def bulk_load(self, objects) -> int:
        # Bulk loads rebuild every member from the same object list, which
        # is also how an operator un-poisons a member wholesale: after a
        # successful group-wide bulk_load the states are equal again, but
        # poisoning is sticky by design — explicit revival only.
        return self._mutate(lambda m: m.bulk_load(objects), op="bulk_load")

    def _mutate(self, fn: Callable[[object], int], op: str) -> int:
        with self._mutation_lock:
            epoch: Optional[int] = None
            last_error: Optional[BaseException] = None
            for mid, member in enumerate(self.members):
                if self._poisoned[mid]:
                    continue
                try:
                    epoch = fn(member)
                except Exception as exc:  # noqa: BLE001 — any failure may be partial
                    last_error = exc
                    self._poison(mid, op, exc)
            if epoch is None:
                raise ShardUnavailableError(
                    f"no live member of shard {self.shard_id} accepted {op}",
                    shard=self.shard_id,
                    members_tried=tuple(range(len(self.members))),
                ) from last_error
            return epoch

    def _poison(self, mid: int, op: str, exc: BaseException) -> None:
        """Permanently exclude a member whose mutation may be half-applied."""
        self._poisoned[mid] = True
        self.breakers[mid].force_open()
        with self._stats_lock:
            self._counts["poisoned"] += 1
        tracer = _trace._ACTIVE
        if tracer is not None:
            tracer.event(
                "resilience_poisoned",
                shard=self.shard_id,
                member=mid,
                op=op,
                error=type(exc).__name__,
            )

    # -- serving (failover loop) -----------------------------------------------------

    def resolve_probe_values(self, identities):
        return self._serve(
            lambda m: m.resolve_probe_values(identities), op="probes"
        )

    def batch(self, queries: Sequence[Box]):
        return self._serve(lambda m: m.batch(queries), op="batch")

    def box_sum_batch(self, queries: Sequence[Box]) -> List[float]:
        return self.batch(queries).results

    def box_sum(self, query: Box) -> float:
        return self.batch([query]).results[0]

    def _serve(self, call: Callable[[object], object], op: str):
        tracer = _trace._ACTIVE
        if tracer is None:
            return self._serve_inner(call, op, None)
        with tracer.span(
            "resilience.failover", shard=self.shard_id, label=self.label, op=op
        ):
            return self._serve_inner(call, op, tracer)

    def _serve_inner(self, call: Callable[[object], object], op: str, tracer):
        cfg = self.config
        tried: List[int] = []
        last_error: Optional[BaseException] = None
        for attempt in range(cfg.max_attempts):
            mid = self._pick_member(tried)
            if mid is None:
                break
            tried.append(mid)
            if attempt > 0:
                self._note("failovers")
                self._m_failovers.inc(label=self.label)
                if tracer is not None:
                    tracer.event(
                        "resilience_failover",
                        shard=self.shard_id,
                        member=mid,
                        attempt=attempt + 1,
                    )
                self._backoff(attempt)
            try:
                result = self._attempt(call, mid, tried)
            except FutureTimeoutError as exc:
                last_error = exc
                self.breakers[mid].record_failure()
                self._note("attempts", "timeouts")
                self._m_attempts.inc(outcome="timeout", label=self.label)
                if tracer is not None:
                    tracer.event(
                        "resilience_timeout", shard=self.shard_id, member=mid
                    )
                continue
            except Exception as exc:  # noqa: BLE001 — any member failure fails over
                last_error = exc
                self.breakers[mid].record_failure()
                self._note("attempts", "failures")
                self._m_attempts.inc(outcome="error", label=self.label)
                if tracer is not None:
                    tracer.event(
                        "resilience_attempt_failed",
                        shard=self.shard_id,
                        member=mid,
                        error=type(exc).__name__,
                    )
                continue
            self.breakers[mid].record_success()
            self._note("attempts")
            self._m_attempts.inc(outcome="ok", label=self.label)
            return result
        self._note("unavailable")
        self._m_unavailable.inc(label=self.label)
        raise ShardUnavailableError(
            f"shard {self.shard_id} has no member able to serve {op}",
            shard=self.shard_id,
            attempts=len(tried),
            members_tried=tuple(tried),
        ) from last_error

    def _pick_member(self, tried: Sequence[int]) -> Optional[int]:
        """First breaker-admitted member, preferring ones not yet tried."""
        admitted = [
            mid
            for mid in range(len(self.members))
            if not self._poisoned[mid] and self.breakers[mid].allow()
        ]
        if not admitted:
            return None
        fresh = [mid for mid in admitted if mid not in tried]
        return fresh[0] if fresh else admitted[0]

    def _backoff(self, attempt: int) -> None:
        cfg = self.config
        if cfg.backoff_base_s <= 0:
            return
        base = cfg.backoff_base_s * (cfg.backoff_multiplier ** (attempt - 1))
        with self._rng_lock:
            jitter = 1.0 + cfg.backoff_jitter * self._rng.uniform(-1.0, 1.0)
        self._sleep(base * jitter)

    # -- one attempt: direct, deadlined, or hedged -------------------------------------

    def _attempt(self, call, mid: int, tried: Sequence[int]):
        cfg = self.config
        if cfg.deadline_s is None and cfg.hedge_delay_s is None:
            # Fully synchronous: deterministic, zero thread overhead.  A
            # hung member blocks here — deadlines are what buy preemption.
            return call(self.members[mid])
        if cfg.hedge_delay_s is not None:
            return self._attempt_hedged(call, mid, tried)
        future = self._pool().submit(call, self.members[mid])
        return future.result(timeout=cfg.deadline_s)

    def _attempt_hedged(self, call, mid: int, tried: Sequence[int]):
        """Race the member against a delayed hedge on the next healthy one.

        The winner's breaker records the success; a losing future that
        later completes records its own outcome through a done-callback,
        so abandoned attempts still feed the health view.
        """
        cfg = self.config
        pool = self._pool()
        start = self._clock()
        end = None if cfg.deadline_s is None else start + cfg.deadline_s
        pending: Dict[Future, int] = {pool.submit(call, self.members[mid]): mid}
        hedged = False
        last_error: Optional[BaseException] = None
        while pending:
            if not hedged:
                timeout = cfg.hedge_delay_s
                if end is not None:
                    timeout = min(timeout, max(0.0, end - self._clock()))
            elif end is None:
                timeout = None
            else:
                timeout = max(0.0, end - self._clock())
            done, _ = futures_wait(
                list(pending), timeout=timeout, return_when=FIRST_COMPLETED
            )
            for future in done:
                done_mid = pending.pop(future)
                try:
                    result = future.result()
                except Exception as exc:  # noqa: BLE001
                    last_error = exc
                    self.breakers[done_mid].record_failure()
                    continue
                self.breakers[done_mid].record_success()
                if hedged:
                    won_by_hedge = done_mid != mid
                    self._note("hedge_wins" if won_by_hedge else "hedges", None)
                    self._m_hedges.inc(
                        outcome="won" if won_by_hedge else "lost", label=self.label
                    )
                self._abandon(pending)
                return result
            if done:
                continue  # completed futures all failed; keep waiting on the rest
            # Nothing completed within the window: hedge once, then the
            # remaining window is bounded by the attempt deadline.
            if not hedged:
                hedged = True
                alt = self._hedge_target(mid, tried)
                if alt is not None:
                    self._note("hedges")
                    pending[pool.submit(call, self.members[alt])] = alt
                    continue
                if end is None:
                    continue  # no hedge target, no deadline: wait it out
            if end is not None and self._clock() >= end:
                self._abandon(pending)
                raise FutureTimeoutError(
                    f"shard {self.shard_id}: no member answered within "
                    f"{cfg.deadline_s}s"
                )
        if last_error is not None:
            raise last_error
        raise FutureTimeoutError(f"shard {self.shard_id}: hedged attempt drained")

    def _hedge_target(self, mid: int, tried: Sequence[int]) -> Optional[int]:
        for alt in range(len(self.members)):
            if alt == mid or self._poisoned[alt] or alt in tried:
                continue
            if self.breakers[alt].allow():
                return alt
        return None

    def _abandon(self, pending: Dict[Future, int]) -> None:
        """Record abandoned futures' eventual outcomes without waiting."""
        for future, mid in pending.items():
            breaker = self.breakers[mid]

            def _done(f: Future, breaker=breaker) -> None:
                if f.cancelled():
                    return
                if f.exception() is not None:
                    breaker.record_failure()
                else:
                    breaker.record_success()

            if not future.cancel():
                future.add_done_callback(_done)

    def _pool(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=max(2, len(self.members)),
                    thread_name_prefix=f"repro-rg{self.shard_id}",
                )
            return self._executor

    # -- bookkeeping -------------------------------------------------------------------

    def _make_transition_hook(self, mid: int) -> Callable[[str, str], None]:
        def hook(old: str, new: str) -> None:
            self._m_transitions.inc(to=new, label=self.label)
            self._m_open.set(
                0.0 if new == "closed" else 1.0,
                shard=str(self.shard_id),
                member=str(mid),
                label=self.label,
            )

        return hook

    def _note(self, *keys: Optional[str]) -> None:
        with self._stats_lock:
            for key in keys:
                if key is not None:
                    self._counts[key] += 1

    def stats(self) -> Dict[str, object]:
        """Failover counters plus per-member breaker/health snapshots."""
        with self._stats_lock:
            out: Dict[str, object] = dict(self._counts)
        out["members"] = len(self.members)
        out["member_states"] = [
            "poisoned" if self._poisoned[mid] else self.breakers[mid].state
            for mid in range(len(self.members))
        ]
        out["breaker_trips"] = [breaker.trips for breaker in self.breakers]
        return out

    def member_stats(self) -> List[Dict[str, float]]:
        """Each member service's own ``stats()`` snapshot, in member order."""
        return [member.stats() for member in self.members]

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Close every member (each drains its accepted requests)."""
        for member in self.members:
            member.close()
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    @property
    def closed(self) -> bool:
        return all(getattr(member, "closed", True) for member in self.members)

    def __enter__(self) -> "ReplicaGroup":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


__all__ = ["ReplicaGroup", "FORCED_OPEN"]
