"""The concurrent query service: admission, locking, caching, planning.

:class:`QueryService` fronts a :class:`~repro.core.aggregator.BoxSumIndex`
(any backend) for serving-style traffic:

* **admission control** — at most ``max_inflight`` requests execute
  concurrently; up to ``max_queue`` more wait (FIFO by condition wakeup);
  beyond that :class:`~repro.core.errors.ServiceOverloadedError` sheds load
  immediately instead of building an unbounded queue;
* **a readers–writer lock** — queries share the index, mutations are
  exclusive, so a reader can never observe a half-applied page split;
* **an epoch-invalidated result/probe cache** — every mutation bumps the
  service epoch, logically invalidating all cached values in O(1); a stale
  entry is never served (see :mod:`repro.service.cache`);
* **corner-sharing batch planning** — a batch's ``2^d``-probe plans are
  deduped across queries and each unique probe runs once, sequentially or
  on a thread pool (see :mod:`repro.service.planner`);
* **observability** — request/probe/cache counters and batch-size plus
  queue-wait histograms in the :mod:`repro.obs` registry, and a
  ``service.batch`` span nesting the underlying ``dominance_sum`` spans
  when a tracer is active.

Object backends (``ar``/``rstar``) expose no probe plan; their queries run
monolithically, serialized on an internal mutex (the aR-tree keeps
per-query instance state), with result caching still applied.
"""

from __future__ import annotations

import threading
from typing import Dict, List, NamedTuple, Optional, Sequence

from ..approx.builder import ApproxTier
from ..core.errors import NotSupportedError, ServiceClosedError, ServiceOverloadedError
from ..core.geometry import Box
from ..obs import trace as _trace
from ..obs.registry import MetricsRegistry, get_registry
from ..replog.digest import StateDigest
from ..replog.records import BulkLoadOp, DeleteOp, InsertOp, SetMetaOp
from .cache import EpochLRUCache, box_key, probe_key
from .locks import AdmissionGate, RWLock
from .planner import BatchPlanner, ProbeIdentity

#: Batch-size histogram buckets (queries per request).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: Queue-wait histogram buckets (seconds).
QUEUE_WAIT_BUCKETS = (0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class BatchResult(NamedTuple):
    """Answers of one batch plus its execution accounting.

    ``epoch`` is the service epoch the whole batch was evaluated at — the
    readers–writer lock guarantees every answer reflects exactly the
    mutations applied before that epoch was observed.
    """

    results: List[float]
    epoch: int
    result_cache_hits: int
    probes_planned: int
    probes_unique: int
    probes_executed: int
    probe_cache_hits: int
    queue_wait_s: float

    @property
    def dedup_ratio(self) -> float:
        """Batch-level probe sharing: ``planned / unique`` (1.0 when empty)."""
        if not self.probes_unique:
            return 1.0
        return self.probes_planned / self.probes_unique


class ProbeSnapshot(NamedTuple):
    """One shard's probe values plus everything a router needs, atomically.

    All fields are read under a single read-lock acquisition, so ``values``,
    ``base`` (the reduction's seed: zero for corner, grand total for EO82),
    ``total`` (the index grand total — the value of any probe that strictly
    dominates the shard's whole extent) and ``epoch`` describe one
    consistent index state: a scatter-gather merge built from them can never
    mix a shard's pre- and post-mutation views.
    """

    values: List[object]
    base: object
    total: object
    epoch: int
    probes_executed: int
    probe_cache_hits: int


class QueryService:
    """A thread-safe box-sum serving layer over one index.

    Parameters
    ----------
    index:
        The :class:`~repro.core.aggregator.BoxSumIndex` (or compatible
        object) to serve.  When it owns a storage context, the context's
        buffer pool is switched to thread-safe mode so concurrent readers
        cannot interleave LRU bookkeeping.
    result_cache / probe_cache:
        Entry capacities of the two epoch-invalidated LRU caches (0
        disables either).
    max_inflight / max_queue / queue_timeout:
        Admission control: concurrent executions, waiting slots, and an
        optional cap (seconds) on queue wait before shedding.
    workers:
        Size of the probe worker pool; 0 (default) resolves probes on the
        calling thread.
    oplog:
        An optional :class:`~repro.replog.ReplicationLog`.  When attached,
        every admitted mutation appends one logical record *inside* the
        write lock — immediately after the epoch bump — so the log's LSN
        sequence is exactly the epoch sequence, which is the invariant
        checkpoint/restore relies on (epoch = ``base_epoch + lsn``).
    approx:
        Opt-in bounded degradation.  Pass an
        :class:`~repro.approx.ApproxPolicy` (a single-slot
        :class:`~repro.approx.ApproxTier` is built over this index's
        mutation stream) or a pre-built tier.  When the admission gate
        would shed a query, the service answers from the synopsis as a
        typed :class:`~repro.approx.ApproxResult` with certified bounds
        instead of raising; exact answers are unchanged.  Default ``None``
        — overload sheds exactly as before.
    """

    def __init__(
        self,
        index,
        *,
        result_cache: int = 1024,
        probe_cache: int = 4096,
        max_inflight: int = 8,
        max_queue: int = 32,
        queue_timeout: Optional[float] = None,
        workers: int = 0,
        registry: Optional[MetricsRegistry] = None,
        label: Optional[str] = None,
        oplog=None,
        approx=None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.index = index
        self.oplog = oplog
        self.label = label if label is not None else getattr(index, "backend", "index")
        self._supports_probes = bool(getattr(index, "supports_probes", False))
        self._planner = BatchPlanner(index) if self._supports_probes else None
        self._results = EpochLRUCache(result_cache)
        self._probes = EpochLRUCache(probe_cache)
        self._rwlock = RWLock()
        #: Serializes monolithic queries of object backends (aR-tree keeps
        #: per-query instance state) — unused on the probe path.
        self._object_mutex = threading.Lock()
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self._gate = AdmissionGate(
            max_inflight, max_queue, queue_timeout, scope=f"service[{self.label}]"
        )
        self._epoch = 0
        #: Stream digest of every *recorded* mutation this member applied —
        #: the member-side half of the divergence-audit invariant
        #: ``digest(log) == digest(member)`` (see :mod:`repro.replog.digest`).
        self._digest = StateDigest()
        self._stats_lock = threading.Lock()
        self._counts: Dict[str, float] = {
            "batches": 0.0,
            "singles": 0.0,
            "queries": 0.0,
            "rejected": 0.0,
            "mutations": 0.0,
            "probes_planned": 0.0,
            "probes_unique": 0.0,
            "probes_executed": 0.0,
            "probes_saved": 0.0,
            "probe_cache_hits": 0.0,
            "result_cache_hits": 0.0,
            "result_cache_misses": 0.0,
            "backend_queries": 0.0,
            "degraded": 0.0,
        }
        storage = getattr(index, "storage", None)
        if storage is not None:
            storage.make_thread_safe()
        self._executor = None
        if workers > 0:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-service"
            )
        registry = registry if registry is not None else get_registry()
        if approx is not None and not isinstance(approx, ApproxTier):
            # Accept a bare policy as shorthand for a fresh single-slot tier.
            approx = ApproxTier(
                index.dims,
                1,
                policy=approx,
                measure=getattr(index, "measure", "sum"),
                registry=registry,
                label=f"{self.label}-approx",
            )
        self.approx = approx
        self._m_requests = registry.counter(
            "repro_service_requests", "requests admitted, by kind (single/batch)"
        )
        self._m_rejected = registry.counter(
            "repro_service_rejected", "requests shed by admission control"
        )
        self._m_queries = registry.counter("repro_service_queries", "box-sum queries answered")
        self._m_probes = registry.counter(
            "repro_service_probes", "dominance probes, by stage (planned/executed)"
        )
        self._m_saved = registry.counter(
            "repro_service_probes_saved", "probe executions avoided by batch dedup"
        )
        self._m_cache = registry.counter(
            "repro_service_cache_lookups", "cache lookups, by cache and outcome"
        )
        self._m_mutations = registry.counter(
            "repro_service_mutations", "epoch-bumping mutations applied"
        )
        self._m_epoch = registry.gauge("repro_service_epoch", "current service epoch")
        self._m_batch_size = registry.histogram(
            "repro_service_batch_size", "queries per request", buckets=BATCH_SIZE_BUCKETS
        )
        self._m_queue_wait = registry.histogram(
            "repro_service_queue_wait_seconds",
            "seconds spent waiting for an execution slot",
            buckets=QUEUE_WAIT_BUCKETS,
        )

    # -- admission --------------------------------------------------------------

    def _admit(self) -> float:
        """Take an execution slot (waiting if allowed); returns the wait time."""
        try:
            return self._gate.admit()
        except ServiceOverloadedError:
            with self._stats_lock:
                self._counts["rejected"] += 1
                self._m_rejected.inc(label=self.label)
            raise

    def _release(self) -> None:
        self._gate.release()

    # -- queries ---------------------------------------------------------------

    def box_sum(self, query: Box):
        """One cached, admission-controlled box-sum.

        With an approximate tier attached, overload degrades to a typed
        :class:`~repro.approx.ApproxResult` instead of shedding.
        """
        try:
            return self._serve([query], kind="single").results[0]
        except ServiceOverloadedError:
            degraded = self._degraded([query])
            if degraded is None:
                raise
            return degraded

    def box_sum_batch(self, queries: Sequence[Box]):
        """Answers for a batch, in request order (see :meth:`batch`)."""
        try:
            return self._serve(queries, kind="batch").results
        except ServiceOverloadedError:
            degraded = self._degraded(list(queries))
            if degraded is None:
                raise
            return degraded

    def batch(self, queries: Sequence[Box]):
        """A batch with its full accounting (epoch, dedup, cache hits)."""
        try:
            return self._serve(queries, kind="batch")
        except ServiceOverloadedError:
            degraded = self._degraded(list(queries))
            if degraded is None:
                raise
            return degraded

    def degraded_batch(self, queries: Sequence[Box], *, reason: str = "direct"):
        """Answer straight from the approximate tier (bypasses admission).

        Raises :class:`~repro.core.errors.NotSupportedError` when no tier
        is attached or the tier refuses (desynced mirrors).
        """
        if self.approx is None:
            raise NotSupportedError(f"service {self.label!r} has no approximate tier")
        result = self.approx.answer(list(queries), reason=reason)
        with self._stats_lock:
            self._counts["degraded"] += 1
        return result

    def _degraded(self, queries: List[Box]):
        """Overload fallback: a certified bounded answer, or None to re-raise."""
        if self.approx is None:
            return None
        result = self.approx.try_answer(queries, reason="overload")
        if result is not None:
            with self._stats_lock:
                self._counts["degraded"] += 1
        return result

    def _serve(self, queries: Sequence[Box], kind: str) -> BatchResult:
        queries = list(queries)
        wait_s = self._admit()
        try:
            with self._rwlock.read():
                tracer = _trace._ACTIVE
                if tracer is None:
                    result = self._execute(queries, wait_s)
                else:
                    with tracer.span("service.batch", label=self.label, queries=len(queries)):
                        result = self._execute(queries, wait_s)
                        tracer.event(
                            "service_plan",
                            cached=result.result_cache_hits,
                            unique=result.probes_unique,
                            executed=result.probes_executed,
                        )
        finally:
            self._release()
        with self._stats_lock:
            c = self._counts
            c["batches" if kind == "batch" else "singles"] += 1
            c["queries"] += len(queries)
            c["probes_planned"] += result.probes_planned
            c["probes_unique"] += result.probes_unique
            c["probes_executed"] += result.probes_executed
            c["probes_saved"] += result.probes_planned - result.probes_unique
            c["probe_cache_hits"] += result.probe_cache_hits
            c["result_cache_hits"] += result.result_cache_hits
            c["result_cache_misses"] += len(queries) - result.result_cache_hits
            self._m_requests.inc(kind=kind, label=self.label)
            self._m_queries.inc(len(queries), label=self.label)
            self._m_batch_size.observe(len(queries), label=self.label)
            self._m_queue_wait.observe(wait_s, label=self.label)
            if result.probes_planned:
                self._m_probes.inc(result.probes_planned, stage="planned", label=self.label)
            if result.probes_executed:
                self._m_probes.inc(result.probes_executed, stage="executed", label=self.label)
            saved = result.probes_planned - result.probes_unique
            if saved:
                self._m_saved.inc(saved, label=self.label)
            if result.result_cache_hits:
                self._m_cache.inc(
                    result.result_cache_hits, cache="result", outcome="hit", label=self.label
                )
            misses = len(queries) - result.result_cache_hits
            if misses:
                self._m_cache.inc(misses, cache="result", outcome="miss", label=self.label)
            if result.probe_cache_hits:
                self._m_cache.inc(
                    result.probe_cache_hits, cache="probe", outcome="hit", label=self.label
                )
        return result

    def _execute(self, queries: List[Box], wait_s: float) -> BatchResult:
        """Resolve a batch under the read lock: caches → planner → backend."""
        epoch = self._epoch
        answers: List[Optional[float]] = [None] * len(queries)
        missing: List[int] = []
        result_hits = 0
        for i, query in enumerate(queries):
            found, value = self._results.get(box_key(query), epoch)
            if found:
                answers[i] = value
                result_hits += 1
            else:
                missing.append(i)

        probes_planned = probes_unique = probes_executed = probe_hits = 0
        if missing:
            to_run = [queries[i] for i in missing]
            if self._planner is not None:
                plan = self._planner.plan(to_run)
                execution = self._planner.execute(
                    plan,
                    lookup=lambda identity: self._probes.get(probe_key(identity), epoch),
                    store=lambda identity, value: self._probes.put(
                        probe_key(identity), epoch, value
                    ),
                    executor=self._executor,
                )
                fresh = execution.results
                probes_planned = execution.probes_total
                probes_unique = execution.probes_unique
                probes_executed = execution.probes_executed
                probe_hits = execution.probe_cache_hits
            else:
                with self._object_mutex:
                    fresh = [self.index.box_sum(query) for query in to_run]
                with self._stats_lock:
                    self._counts["backend_queries"] += len(to_run)
            for i, value in zip(missing, fresh):
                answers[i] = value
                self._results.put(box_key(queries[i]), epoch, value)

        return BatchResult(
            results=answers,
            epoch=epoch,
            result_cache_hits=result_hits,
            probes_planned=probes_planned,
            probes_unique=probes_unique,
            probes_executed=probes_executed,
            probe_cache_hits=probe_hits,
            queue_wait_s=wait_s,
        )

    # -- shard router seam -------------------------------------------------------

    def resolve_probe_values(self, identities: Sequence[ProbeIdentity]) -> ProbeSnapshot:
        """Resolve raw probe values for a router, atomically with base/total/epoch.

        This is the scatter half of sharded scatter-gather
        (:mod:`repro.shard.router`): the router deduplicates probe identities
        across queries and shards, each shard resolves its values here, and
        the gather side merges them by addition.  Everything in the returned
        :class:`ProbeSnapshot` is read under one read-lock acquisition, so the
        merge never mixes pre- and post-mutation views of this shard.  Probe
        values are cached in (and served from) the epoch-invalidated probe
        cache exactly like locally planned batches.
        """
        if not self._supports_probes:
            raise NotSupportedError(
                f"backend {self.label!r} exposes no probe seam; "
                "use box_sum_batch for monolithic evaluation"
            )
        executed = 0
        hits = 0
        values: List[object] = []
        self._admit()
        try:
            with self._rwlock.read():
                epoch = self._epoch
                for identity in identities:
                    found, value = self._probes.get(probe_key(identity), epoch)
                    if not found:
                        value = self.index.probe_value(identity[0], identity[1])
                        self._probes.put(probe_key(identity), epoch, value)
                        executed += 1
                    else:
                        hits += 1
                    values.append(value)
                base = self.index.probe_base
                total = self.index.total()
        finally:
            self._release()
        with self._stats_lock:
            self._counts["probes_executed"] += executed
            self._counts["probe_cache_hits"] += hits
            if executed:
                self._m_probes.inc(executed, stage="executed", label=self.label)
            if hits:
                self._m_cache.inc(hits, cache="probe", outcome="hit", label=self.label)
        return ProbeSnapshot(
            values=values,
            base=base,
            total=total,
            epoch=epoch,
            probes_executed=executed,
            probe_cache_hits=hits,
        )

    # -- mutations -------------------------------------------------------------

    def insert(self, box: Box, value: float = 1.0) -> int:
        """Insert one object exclusively; returns the new epoch."""
        return self.mutate(
            lambda: self.index.insert(box, value),
            op="insert",
            record=InsertOp(box, float(value)),
        )

    def delete(self, box: Box, value: float = 1.0) -> int:
        """Delete one object exclusively; returns the new epoch."""
        return self.mutate(
            lambda: self.index.delete(box, value),
            op="delete",
            record=DeleteOp(box, float(value)),
        )

    def bulk_load(self, objects) -> int:
        """Rebuild the index exclusively; returns the new epoch."""
        objects = list(objects)
        return self.mutate(
            lambda: self.index.bulk_load(objects),
            op="bulk_load",
            record=BulkLoadOp(tuple((box, float(value)) for box, value in objects)),
        )

    def set_meta(self, key: str, blob: bytes) -> int:
        """Write an opaque metadata blob exclusively; returns the new epoch.

        Applied to the index when it exposes a ``set_meta`` hook (the
        durable pager does); always shipped to the replication log so a
        replica fronting a durable backend replays it.
        """
        apply_meta = getattr(self.index, "set_meta", None)
        fn = (lambda: apply_meta(blob)) if apply_meta is not None else (lambda: None)
        return self.mutate(fn, op="set_meta", record=SetMetaOp(key, bytes(blob)))

    def mutate(self, fn, op: str = "mutate", record=None) -> int:
        """Run an arbitrary index mutation under the write lock and bump the epoch.

        Use this for mutations the service has no verb for — e.g. a durable
        backend's ``set_meta`` — so cached results can never outlive them.
        ``record`` is the logical operation shipped to the attached
        replication log (if any); restores pass ``record=None`` so
        replaying the log never re-logs it.
        """
        # Fail fast before queueing on the write lock: a post-close mutation
        # must not block behind a draining reader.  The re-check inside the
        # lock closes the race with a concurrent close().
        if self._gate.closed:
            raise ServiceClosedError("service is closed")
        with self._rwlock.write():
            if self._gate.closed:
                raise ServiceClosedError("service is closed")
            fn()
            self._epoch += 1
            epoch = self._epoch
            if record is not None:
                # Digest the admitted record whether or not this member
                # carries the log itself: replicated members log at the
                # group level, yet each must track its own applied stream
                # for the divergence audit.  Un-recorded mutations
                # (restores, out-of-band tampering) deliberately do not
                # touch it — a restore re-seeds via sync_digest.
                self._digest.note(record)
            if self.oplog is not None and record is not None:
                self.oplog.record(record)
            if self.approx is not None:
                # Unrecorded mutations (record=None, e.g. restores) desync
                # the tier's mirror; it refuses to answer until reseeded.
                self.approx.note_record(0, record)
        with self._stats_lock:
            self._counts["mutations"] += 1
            self._m_mutations.inc(op=op, label=self.label)
            self._m_epoch.set(epoch, label=self.label)
        return epoch

    def checkpoint(self):
        """Snapshot the attached replication log's state under the write lock.

        Taking the write lock guarantees the checkpoint reflects a
        mutation boundary — no half-applied batch, no record racing the
        snapshot — and passing the live epoch pins the ``epoch =
        base_epoch + lsn`` invariant into the checkpoint file.
        """
        if self.oplog is None:
            raise NotSupportedError(f"service {self.label!r} has no replication log attached")
        with self._rwlock.write():
            return self.oplog.checkpoint(self._epoch)

    def sync_epoch(self, epoch: int) -> None:
        """Align this service's epoch after a log-driven restore.

        Both caches are cleared: entries were tagged with the pre-restore
        epoch sequence, and re-aligning the counter could otherwise let a
        stale value collide with a future epoch and be served as fresh.
        """
        with self._rwlock.write():
            self._epoch = epoch
            self._results.clear()
            self._probes.clear()
            if self.approx is not None:
                self.approx.desync()
        with self._stats_lock:
            self._m_epoch.set(epoch, label=self.label)

    def sync_digest(self, digest: StateDigest) -> None:
        """Re-seed the stream digest after a log-driven restore.

        Called by :meth:`~repro.replog.ReplicationLog.restore_into` with
        the restored state's digest, so the audit invariant
        ``digest(log) == digest(member)`` holds again from the first
        post-restore mutation.
        """
        with self._rwlock.write():
            self._digest = digest.copy()

    @property
    def state_digest(self) -> int:
        """The 64-bit stream digest of this member's applied mutations."""
        return self._digest.value

    @property
    def epoch(self) -> int:
        """Mutations applied so far; cached values are tagged with this."""
        return self._epoch

    # -- introspection -----------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """A flat snapshot: service counters plus both caches' stats."""
        with self._stats_lock:
            out = dict(self._counts)
        out["epoch"] = float(self._epoch)
        out["inflight"] = float(self._gate.inflight)
        out["dedup_ratio"] = (
            out["probes_planned"] / out["probes_unique"] if out["probes_unique"] else 1.0
        )
        for name, cache in (("result_cache", self._results), ("probe_cache", self._probes)):
            for key, value in cache.stats().items():
                out[f"{name}.{key}"] = value
        return out

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Reject new work, drain accepted requests, release the worker pool.

        Close is *graceful*: requests the admission gate already accepted —
        executing or queued — run to completion and return real answers;
        only admissions arriving after the close are rejected with
        :class:`~repro.core.errors.ServiceClosedError`.  The caches are
        cleared only once the gate has drained, so no in-flight batch ever
        races a teardown.
        """
        if not self._gate.close():
            return
        self._gate.drain()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self._results.clear()
        self._probes.clear()

    @property
    def closed(self) -> bool:
        return self._gate.closed

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


__all__ = [
    "QueryService",
    "BatchResult",
    "ProbeSnapshot",
    "ServiceOverloadedError",
    "ServiceClosedError",
]
