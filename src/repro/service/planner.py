"""Corner-sharing batch planner for box-sum queries.

The paper's reduction (Lemma 1 / Theorem 2) turns every box-sum into
exactly ``2^d`` signed dominance-sum probes.  A *batch* of queries over the
same index therefore shares structure: any two queries whose plans contain
probes with equal ``(index key, point)`` identity need that dominance-sum
computed only once.  Real serving workloads (hot dashboard queries,
repeated tiles, drill-downs anchored at a shared corner) produce such
collisions constantly.

:class:`BatchPlanner` expands a batch to its probes via
:meth:`~repro.core.aggregator.BoxSumIndex.probe_plan`, dedupes identities
across the whole batch (first-seen order, so execution order — and thus
I/O accounting — is deterministic), resolves each unique probe exactly once
(optionally through a probe cache and/or a worker pool), and reassembles
per-query answers by inclusion–exclusion.  Answers are bit-identical to
direct ``box_sum`` calls: probes are pure functions of index state and the
reassembly accumulates in the same order as the direct path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..core.errors import NotSupportedError
from ..core.geometry import Box
from ..core.reduction import Probe
from ..core.values import Value

#: A probe identity: ``(index key, point)`` — see :attr:`Probe.identity`.
ProbeIdentity = Tuple[object, Tuple[float, ...]]

#: Optional probe-level cache hook: identity -> (found, value).
ProbeLookup = Callable[[ProbeIdentity], Tuple[bool, Value]]

#: Optional probe-level store hook, called for every freshly executed probe.
ProbeStore = Callable[[ProbeIdentity, Value], None]


class BatchPlan:
    """A planned batch: per-query probe plans plus the deduped probe set."""

    __slots__ = ("queries", "plans", "unique", "probes_total")

    def __init__(self, queries: Sequence[Box], plans: List[List[Probe]]) -> None:
        self.queries = list(queries)
        self.plans = plans
        #: Unique probe identities in first-seen order.
        self.unique: List[ProbeIdentity] = []
        seen: Dict[ProbeIdentity, None] = {}
        total = 0
        for plan in plans:
            for probe in plan:
                total += 1
                identity = probe.identity
                if identity not in seen:
                    seen[identity] = None
                    self.unique.append(identity)
        self.probes_total = total

    @property
    def probes_unique(self) -> int:
        """Distinct ``(index key, point)`` probes across the batch."""
        return len(self.unique)

    @property
    def probes_saved(self) -> int:
        """Probes the batch shares — executions avoided relative to naive."""
        return self.probes_total - self.probes_unique

    @property
    def dedup_ratio(self) -> float:
        """``probes_total / probes_unique`` (1.0 for an empty batch)."""
        if not self.unique:
            return 1.0
        return self.probes_total / self.probes_unique


class BatchExecution(NamedTuple):
    """Outcome of one planned batch: answers plus probe accounting."""

    results: List[float]
    probes_total: int
    probes_unique: int
    probes_executed: int
    probe_cache_hits: int


class BatchPlanner:
    """Plans and executes box-sum batches against one probe-capable index."""

    def __init__(self, index) -> None:
        if not getattr(index, "supports_probes", False):
            raise NotSupportedError(
                f"{type(index).__name__} does not expose a probe plan "
                "(object backends answer queries monolithically)"
            )
        self.index = index

    def plan(self, queries: Sequence[Box]) -> BatchPlan:
        """Expand and dedupe a batch (validates every query's arity)."""
        plans = [self.index.probe_plan(query) for query in queries]
        return BatchPlan(queries, plans)

    def execute(
        self,
        plan: BatchPlan,
        lookup: Optional[ProbeLookup] = None,
        store: Optional[ProbeStore] = None,
        executor=None,
    ) -> BatchExecution:
        """Resolve the unique probes and reassemble every query's answer.

        ``lookup``/``store`` bridge to the service's probe cache; ``executor``
        (any object with ``map``, e.g. a ``ThreadPoolExecutor``) parallelizes
        the cache-missing probes.  Probe values land in a dict keyed by
        identity, so reassembly is independent of resolution order.
        """
        values: Dict[ProbeIdentity, Value] = {}
        missing: List[ProbeIdentity] = []
        cache_hits = 0
        for identity in plan.unique:
            if lookup is not None:
                found, value = lookup(identity)
                if found:
                    values[identity] = value
                    cache_hits += 1
                    continue
            missing.append(identity)

        index = self.index

        def run(identity: ProbeIdentity) -> Value:
            return index.probe_value(identity[0], identity[1])

        if executor is not None and len(missing) > 1:
            resolved = list(executor.map(run, missing))
        else:
            resolved = [run(identity) for identity in missing]
        for identity, value in zip(missing, resolved):
            values[identity] = value
            if store is not None:
                store(identity, value)

        results = [index.box_sum_from_probes(query_plan, values) for query_plan in plan.plans]
        return BatchExecution(
            results=results,
            probes_total=plan.probes_total,
            probes_unique=plan.probes_unique,
            probes_executed=len(missing),
            probe_cache_hits=cache_hits,
        )


__all__ = ["BatchPlan", "BatchPlanner", "BatchExecution", "ProbeIdentity"]
