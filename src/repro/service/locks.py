"""Concurrency primitives for the serving layers: RW lock and admission gate.

Queries only read index state (the dominance trees are traversed without
structural mutation), so any number of them may run concurrently; updates
restructure pages and must be exclusive.  :class:`RWLock` provides exactly
that discipline with modest writer preference: once a writer is waiting, new
readers queue behind it, so a steady read stream cannot starve updates.

The GIL alone is *not* enough here — a ``box_sum`` is thousands of bytecode
instructions and the interpreter preempts between any two of them, so
without exclusion a reader could observe a half-applied page split.

:class:`AdmissionGate` factors the bounded-concurrency admission discipline
out of :class:`~repro.service.service.QueryService` so the sharded cluster
(:mod:`repro.shard.cluster`) applies the identical policy one level up: at
most ``max_inflight`` requests execute, up to ``max_queue`` wait FIFO-by-
wakeup, anything beyond is shed immediately with a
:class:`~repro.core.errors.ServiceOverloadedError` that carries the
saturation snapshot (``inflight``/``queue_depth``).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from ..core.errors import ServiceClosedError, ServiceOverloadedError


class RWLock:
    """Multiple concurrent readers XOR one writer, writer-preferring."""

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # -- reader side -----------------------------------------------------------

    def acquire_read(self) -> None:
        """Block until no writer holds or awaits the lock, then enter."""
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- writer side -----------------------------------------------------------

    def acquire_write(self) -> None:
        """Block until exclusive, barring new readers while waiting."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    # -- context managers ---------------------------------------------------------

    @contextmanager
    def read(self) -> Iterator[None]:
        """``with lock.read(): ...`` — shared acquisition."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        """``with lock.write(): ...`` — exclusive acquisition."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class AdmissionGate:
    """Bounded-concurrency admission: execute, queue, or shed.

    ``admit()`` returns the seconds spent waiting for a slot; every
    successful ``admit()`` must be paired with a ``release()``.  When
    ``max_inflight`` slots are taken and ``max_queue`` callers already wait,
    rejection is immediate — the raised
    :class:`~repro.core.errors.ServiceOverloadedError` carries the
    ``inflight``/``queue_depth`` snapshot observed at rejection.  ``scope``
    names the gate in messages (``"service"``, ``"cluster"``) so stacked
    gates stay distinguishable.

    **Close is reject-then-drain, never abort.**  A request the gate has
    accepted — executing *or* queued for a slot — is allowed to finish;
    ``close()`` only rejects admissions that arrive afterwards.  Queued
    waiters therefore never see a spurious
    :class:`~repro.core.errors.ServiceClosedError`: they proceed as the
    in-flight requests release their slots.  ``drain()`` blocks until the
    gate is empty (no slot held, no waiter queued) and is what the owning
    service calls between closing the gate and tearing down the resources
    those requests still use.
    """

    def __init__(
        self,
        max_inflight: int,
        max_queue: int,
        queue_timeout: Optional[float] = None,
        scope: str = "service",
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self.scope = scope
        self._cond = threading.Condition(threading.Lock())
        self._inflight = 0
        self._waiting = 0
        self._closed = False

    @property
    def inflight(self) -> int:
        """Requests currently holding an execution slot."""
        return self._inflight

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a slot."""
        return self._waiting

    @property
    def closed(self) -> bool:
        return self._closed

    def admit(self) -> float:
        """Take an execution slot (waiting if allowed); returns the wait time."""
        start = time.perf_counter()
        deadline = None if self.queue_timeout is None else start + self.queue_timeout
        with self._cond:
            if self._closed:
                raise ServiceClosedError(f"{self.scope} is closed")
            if self._inflight >= self.max_inflight:
                if self._waiting >= self.max_queue:
                    raise ServiceOverloadedError(
                        f"{self.scope} overloaded "
                        f"(max_inflight={self.max_inflight}, max_queue={self.max_queue})",
                        inflight=self._inflight,
                        queue_depth=self._waiting,
                    )
                self._waiting += 1
                try:
                    # Deliberately *not* conditioned on ``closed``: a waiter
                    # was accepted into the queue before any close, so it
                    # keeps waiting for a slot (freed as in-flight requests
                    # complete) instead of aborting with ServiceClosedError.
                    while self._inflight >= self.max_inflight:
                        timeout = None
                        if deadline is not None:
                            timeout = deadline - time.perf_counter()
                            if timeout <= 0:
                                raise ServiceOverloadedError(
                                    f"{self.scope}: no execution slot within "
                                    f"{self.queue_timeout}s",
                                    inflight=self._inflight,
                                    queue_depth=self._waiting - 1,
                                )
                        self._cond.wait(timeout=timeout)
                finally:
                    self._waiting -= 1
            self._inflight += 1
        return time.perf_counter() - start

    def release(self) -> None:
        with self._cond:
            self._inflight -= 1
            # notify_all, not notify: besides the next queued waiter, a
            # drain() caller may be blocked on the gate going empty.
            self._cond.notify_all()

    def close(self) -> bool:
        """Reject new admissions; accepted requests keep their slots/queue.

        Idempotent; returns True on the first close, False afterwards.
        """
        with self._cond:
            already = self._closed
            self._closed = True
            self._cond.notify_all()
        return not already

    def drain(self) -> None:
        """Block until no request holds a slot and none waits for one.

        Usually called right after :meth:`close` (new admissions are already
        rejected, so the population can only shrink); calling it on an open
        gate merely waits for a momentarily idle instant.  Must not be
        called from a thread that itself holds a slot — that request can
        never finish while its own close waits on it.
        """
        with self._cond:
            while self._inflight or self._waiting:
                self._cond.wait()
