"""A readers–writer lock for the query service.

Queries only read index state (the dominance trees are traversed without
structural mutation), so any number of them may run concurrently; updates
restructure pages and must be exclusive.  :class:`RWLock` provides exactly
that discipline with modest writer preference: once a writer is waiting, new
readers queue behind it, so a steady read stream cannot starve updates.

The GIL alone is *not* enough here — a ``box_sum`` is thousands of bytecode
instructions and the interpreter preempts between any two of them, so
without exclusion a reader could observe a half-applied page split.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """Multiple concurrent readers XOR one writer, writer-preferring."""

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # -- reader side -----------------------------------------------------------

    def acquire_read(self) -> None:
        """Block until no writer holds or awaits the lock, then enter."""
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- writer side -----------------------------------------------------------

    def acquire_write(self) -> None:
        """Block until exclusive, barring new readers while waiting."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    # -- context managers ---------------------------------------------------------

    @contextmanager
    def read(self) -> Iterator[None]:
        """``with lock.read(): ...`` — shared acquisition."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        """``with lock.write(): ...`` — exclusive acquisition."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
