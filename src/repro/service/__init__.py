"""Query serving layer: batching, caching, admission control.

The paper's reduction makes box-sum *serving* unusually batchable: every
query is exactly ``2^d`` dominance-sum probes (Lemma 1), so a batch of
queries over one index shares identical ``(index key, point)`` probes that
need computing only once.  This package exploits that:

* :mod:`repro.service.planner` — the corner-sharing batch planner
  (:class:`BatchPlanner`): expand, dedupe, resolve once, reassemble;
* :mod:`repro.service.cache` — :class:`EpochLRUCache`, an LRU over
  canonicalized query boxes and probes where every mutation bumps an epoch
  and logically invalidates all older entries in O(1);
* :mod:`repro.service.locks` — the readers–writer lock
  (:class:`RWLock`) keeping concurrent readers off half-applied updates;
* :mod:`repro.service.service` — :class:`QueryService`, tying admission
  control (``max_inflight``/``max_queue``/backpressure), the lock, both
  caches, the planner, an optional probe worker pool and :mod:`repro.obs`
  instrumentation together.

Quickstart::

    from repro import Box, BoxSumIndex, QueryService

    service = QueryService(BoxSumIndex(dims=2, backend="ba"))
    service.insert(Box((2, 10), (15, 26)), value=4.0)
    batch = service.batch([Box((5, 7), (20, 15)), Box((5, 7), (20, 15))])
    batch.results        # answers, bit-identical to index.box_sum
    batch.dedup_ratio    # > 1.0: the duplicate query shared all its probes
"""

from ..core.errors import ServiceClosedError, ServiceError, ServiceOverloadedError
from .cache import EpochLRUCache
from .locks import AdmissionGate, RWLock
from .planner import BatchExecution, BatchPlan, BatchPlanner
from .service import BatchResult, ProbeSnapshot, QueryService

__all__ = [
    "AdmissionGate",
    "BatchExecution",
    "BatchPlan",
    "BatchPlanner",
    "BatchResult",
    "EpochLRUCache",
    "ProbeSnapshot",
    "QueryService",
    "RWLock",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOverloadedError",
]
