"""Epoch-invalidated LRU cache for box-sum results and corner probes.

The service keys entries by *canonicalized* identities — a query box by its
``(low, high)`` coordinate tuples (already normalized to plain floats by
:func:`repro.core.geometry.as_coords`), a probe by its
``(index key, point)`` :attr:`~repro.core.reduction.Probe.identity` — so two
requests for the same logical value share one entry regardless of how the
caller spelled the coordinates.

Invalidation is *epoch-based*: every entry remembers the index epoch it was
computed at, and the owning :class:`~repro.service.service.QueryService`
bumps its epoch on every mutation.  A lookup whose stored epoch differs from
the current one is a miss (counted as ``stale``) and the entry is dropped,
so a bump logically invalidates the whole cache in O(1) — no sweep — while
entries untouched since the bump age out through normal LRU pressure.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Tuple

_MISS = object()


class EpochLRUCache:
    """A thread-safe LRU map whose entries are valid for one epoch only.

    ``capacity=0`` disables the cache (every get misses, puts are dropped),
    which keeps call sites branch-free.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        #: key -> (epoch, value), in LRU order (oldest first).
        self._entries: "OrderedDict[Hashable, Tuple[int, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.evictions = 0

    def get(self, key: Hashable, epoch: int) -> Tuple[bool, Any]:
        """``(True, value)`` on a same-epoch hit, else ``(False, None)``.

        An entry from an older epoch is dropped and counted under
        :attr:`stale` (as well as :attr:`misses`) — a stale value is never
        returned.
        """
        with self._lock:
            entry = self._entries.get(key, _MISS)
            if entry is _MISS:
                self.misses += 1
                return False, None
            stored_epoch, value = entry
            if stored_epoch != epoch:
                del self._entries[key]
                self.misses += 1
                self.stale += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: Hashable, epoch: int, value: Any) -> None:
        """Insert or refresh an entry stamped with ``epoch``."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = (epoch, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (stats are kept — they describe lifetime traffic)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, float]:
        """Lifetime counters plus current residency, as a flat dict."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": float(self.hits),
                "misses": float(self.misses),
                "stale": float(self.stale),
                "evictions": float(self.evictions),
                "entries": float(len(self._entries)),
                "hit_rate": self.hits / total if total else 0.0,
            }


def box_key(box) -> Tuple[str, Tuple[float, ...], Tuple[float, ...]]:
    """Canonical result-cache key for a query box."""
    return ("box", box.low, box.high)


def probe_key(identity: Tuple[object, Tuple[float, ...]]) -> Tuple[str, object, object]:
    """Canonical probe-cache key for a :attr:`Probe.identity`."""
    return ("probe", identity[0], identity[1])


def make_caches(result_entries: int, probe_entries: int) -> Tuple["EpochLRUCache", "EpochLRUCache"]:
    """The service's two caches: whole-query results and corner probes."""
    return EpochLRUCache(result_entries), EpochLRUCache(probe_entries)


__all__ = ["EpochLRUCache", "box_key", "probe_key", "make_caches"]
