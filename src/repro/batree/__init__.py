"""The Box Aggregation Tree (BA-tree) — the paper's primary contribution."""

from .batree import BATree

__all__ = ["BATree"]
