"""The BA-tree: a k-d-B-tree whose index records carry aggregation borders.

Paper Section 5: "the 2-dimensional BA-tree is a k-d-B-tree where each
index record is augmented with a single value subtotal and two
1-dimensional BA-trees called x-border and y-border ... a d-dimensional
BA-tree is a k-d-B-tree where each index record is augmented with one
subtotal value and d borders, each of which is a (d-1)-dimensional
BA-tree."

For a record ``r`` and a dominance query at ``p ∈ r.box`` the points
dominated by ``p`` fall into: (1) the points in ``subtree(r)`` — handled by
recursion; (2) the points dominated by ``r``'s low corner — ``r.subtotal``;
(3..) for each dimension ``j``, points below the box's low edge in ``j``
(within its extent elsewhere) — ``r.borders[j]``, a (d-1)-dimensional
dominance-sum structure over the points projected off dimension ``j``.
One root-to-leaf path with a constant number of border queries per level
answers the query.

Split bookkeeping generalizes Figure 8 to d dimensions.  Splitting record
``F`` along dimension ``k`` at ``c`` into ``Fb``/``Ft``:

* borders perpendicular to the plane (``j ≠ k``) are *partitioned* by their
  ``k`` coordinate — the lower part serves ``Fb``, the upper part ``Ft``;
* the lower parts still matter to ``Ft`` (their points are below
  ``Ft.low_k``): each migrates into ``Ft.borders[k]``, or directly into
  ``Ft.subtotal`` when it is dominated by ``Ft``'s low corner (in 2-d this
  is exactly the paper's "y-border of F is split in two" rule);
* ``borders[k]`` (points already below the box in ``k``) is *copied* to
  both halves;
* on a **leaf** split, the lower page's own points additionally join
  ``Ft.borders[k]`` ("the x-border of the top record Ft is composed of the
  x-border of F plus the points in page(Fb)"); on an **index** split they
  do not — the recursion into ``Ft``'s child already accounts for them,
  exactly the subtlety Figure 8d explains.

A migrating border entry lacks its dropped coordinate ``j``; it is
re-materialized as ``-inf``, which is sound because the only property any
future comparison uses is that the true value lies below every holder's
low edge in ``j``.

A 1-dimensional BA-tree "is basically a B+-tree" and delegates to
:class:`~repro.bptree.AggBPlusTree`.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..borders import Border
from ..bptree import AggBPlusTree
from ..core.errors import DimensionMismatchError, TreeInvariantError
from ..core.geometry import Box, Coords, as_coords
from ..core.values import Value, values_equal
from ..obs import trace as _trace
from ..kdb.split import choose_index_split_plane, choose_leaf_split_plane
from ..storage import StorageContext

_Entry = Tuple[Coords, Value]

#: Classification results of a point against an index record.
_INSIDE, _SKIP, _SUBTOTAL = "inside", "skip", "subtotal"


class _BARecord:
    """Index record: box, child page, subtotal and d borders."""

    __slots__ = ("box", "child", "subtotal", "borders")

    def __init__(self, box: Box, child: int, subtotal: Value, borders: List[Border]) -> None:
        self.box = box
        self.child = child
        self.subtotal = subtotal
        self.borders = borders


class _BALeaf:
    __slots__ = ("pid", "entries")

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.entries: List[_Entry] = []

    @property
    def is_leaf(self) -> bool:
        return True


class _BAIndex:
    __slots__ = ("pid", "records")

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.records: List[_BARecord] = []

    @property
    def is_leaf(self) -> bool:
        return False


class BATree:
    """A d-dimensional BA-tree over a shared storage context."""

    def __init__(
        self,
        storage: StorageContext,
        dims: int,
        zero: Value = 0.0,
        value_bytes: Optional[int] = None,
        leaf_capacity: Optional[int] = None,
        index_capacity: Optional[int] = None,
        spill_bytes: Optional[int] = None,
    ) -> None:
        if dims < 1:
            raise DimensionMismatchError(f"dims must be >= 1, got {dims}")
        self.storage = storage
        self.dims = dims
        self.zero = zero
        self.value_bytes = (value_bytes if value_bytes is not None else storage.layout.value_bytes)
        self.spill_bytes = spill_bytes
        self._delegate: Optional[AggBPlusTree] = None
        if dims == 1:
            self._delegate = AggBPlusTree(
                storage,
                zero=zero,
                value_bytes=self.value_bytes,
                leaf_capacity=leaf_capacity,
                internal_capacity=internal_cap_for_1d(index_capacity),
            )
            return
        layout = storage.with_layout(self.value_bytes)
        self.leaf_capacity = leaf_capacity or layout.point_leaf_capacity(dims)
        self.index_capacity = index_capacity or layout.kdb_index_capacity(dims)
        if self.leaf_capacity < 2:
            raise ValueError(f"leaf_capacity must be >= 2, got {self.leaf_capacity}")
        if self.index_capacity < 2:
            raise ValueError(f"index_capacity must be >= 2, got {self.index_capacity}")
        self._sub_leaf_capacity = leaf_capacity
        self._sub_index_capacity = index_capacity
        self.universe = Box((float("-inf"),) * dims, (float("inf"),) * dims)
        root_page = self._new_leaf()
        self._root = _BARecord(self.universe, root_page.pid, zero, self._fresh_borders())
        self._total: Value = zero
        self.num_entries = 0

    # -- construction helpers -----------------------------------------------------

    def _fetch(self, pid: int, write: bool = False):
        self.storage.buffer.access(pid, write=write)
        return self.storage.pager.get(pid)

    def _new_leaf(self) -> _BALeaf:
        page = _BALeaf(self.storage.pager.allocate())
        self.storage.pager.put(page.pid, page)
        return page

    def _new_index(self) -> _BAIndex:
        page = _BAIndex(self.storage.pager.allocate())
        self.storage.pager.put(page.pid, page)
        return page

    def _make_border_subtree(self) -> object:
        sub_dims = self.dims - 1
        if sub_dims == 1:
            return AggBPlusTree(
                self.storage,
                zero=self.zero,
                value_bytes=self.value_bytes,
                leaf_capacity=self._sub_leaf_capacity,
                internal_capacity=internal_cap_for_1d(self._sub_index_capacity),
            )
        return BATree(
            self.storage,
            sub_dims,
            zero=self.zero,
            value_bytes=self.value_bytes,
            leaf_capacity=self._sub_leaf_capacity,
            index_capacity=self._sub_index_capacity,
            spill_bytes=self.spill_bytes,
        )

    def _new_border(self) -> Border:
        entry_bytes = 8 * (self.dims - 1) + self.value_bytes
        return Border(
            self.storage,
            self.dims - 1,
            self.zero,
            entry_bytes,
            self._make_border_subtree,
            spill_bytes=self.spill_bytes,
        )

    def _fresh_borders(self) -> List[Border]:
        return [self._new_border() for _ in range(self.dims)]

    # -- point/record classification ---------------------------------------------------

    def _classify(self, coords: Coords, box: Box):
        """Where does an inserted point land relative to an index record?

        Returns ``_INSIDE`` (route into the subtree), ``_SUBTOTAL`` (the
        point is dominated by the record's low corner), ``(_border, j)``
        (append to border ``j`` — the first dimension where the point falls
        below the box), or ``_SKIP`` (the point can never be dominated by a
        query inside the record's box).
        """
        low = box.low
        first_below = -1
        n_below = 0
        for i, c in enumerate(coords):
            if c < low[i]:
                n_below += 1
                if first_below < 0:
                    first_below = i
        if n_below == 0:
            return _INSIDE if box.contains_point(coords) else _SKIP
        if n_below == self.dims:
            return _SUBTOTAL
        high = box.high
        for i, c in enumerate(coords):
            if i != first_below and c >= high[i]:
                return _SKIP
        return ("border", first_below)

    # -- queries --------------------------------------------------------------------------

    def dominance_sum(self, point: Sequence[float]) -> Value:
        """Sum of values of stored points strictly dominated by ``point``.

        One root-to-leaf path; per level, the containing record contributes
        its subtotal and one lower-dimensional query per border.
        """
        if self._delegate is not None:
            return self._delegate.dominance_sum(point)
        coords = self._check_point(point)
        tracer = _trace._ACTIVE
        if tracer is None:
            return self._dominance_sum(coords, None)
        with tracer.span("ba.dominance_sum", dims=self.dims):
            return self._dominance_sum(coords, tracer)

    def _dominance_sum(self, coords: Coords, tracer) -> Value:
        result = self.zero
        record = self._root
        while True:
            page = self._fetch(record.child)
            if tracer is not None:
                tracer.event("node", pid=record.child, leaf=page.is_leaf)
            if page.is_leaf:
                for stored, value in page.entries:
                    if all(s < c for s, c in zip(stored, coords)):
                        result = result + value
                return result
            nxt = None
            for r in page.records:
                if r.box.contains_point(coords):
                    nxt = r
                    break
            if nxt is None:  # pragma: no cover - boxes partition the space
                raise TreeInvariantError(f"no record contains {coords}")
            result = result + nxt.subtotal
            for j in range(self.dims):
                result = result + nxt.borders[j].dominance_sum(_drop(coords, j))
            record = nxt

    def total(self) -> Value:
        """Sum of every stored value."""
        if self._delegate is not None:
            return self._delegate.total()
        return self._total

    def __len__(self) -> int:
        if self._delegate is not None:
            return len(self._delegate)
        return self.num_entries

    # -- insertion -----------------------------------------------------------------------------

    def insert(self, point: Sequence[float], value: Value) -> None:
        """Insert a weighted point (Section 5's insertion algorithm)."""
        if self._delegate is not None:
            self._delegate.insert(point, value)
            return
        coords = self._check_point(point)
        self._total = self._total + value
        split = self._insert_record(self._root, coords, value, 0)
        if split is not None:
            new_root = self._new_index()
            new_root.records = list(split)
            self.storage.buffer.access(new_root.pid, write=True)
            self._root = _BARecord(self.universe, new_root.pid, self.zero, self._fresh_borders())

    def _insert_record(
        self, record: _BARecord, coords: Coords, value: Value, depth: int
    ) -> Optional[Tuple[_BARecord, _BARecord]]:
        page = self._fetch(record.child, write=True)
        if page.is_leaf:
            for i, (stored, stored_value) in enumerate(page.entries):
                if stored == coords:
                    page.entries[i] = (stored, stored_value + value)
                    return None
            page.entries.append((coords, value))
            self.num_entries += 1
            if len(page.entries) <= self.leaf_capacity:
                return None
            return self._split_record(record, depth, forced_plane=None)
        target = None
        for r in page.records:
            kind = self._classify(coords, r.box)
            if kind == _INSIDE:
                target = r
            elif kind == _SUBTOTAL:
                r.subtotal = r.subtotal + value
            elif kind != _SKIP:
                _tag, j = kind
                r.borders[j].insert(_drop(coords, j), value)
        if target is None:  # pragma: no cover - boxes partition the space
            raise TreeInvariantError(f"no record accepts {coords}")
        split = self._insert_record(target, coords, value, depth + 1)
        if split is not None:
            idx = page.records.index(target)
            page.records[idx : idx + 1] = list(split)
            if len(page.records) > self.index_capacity:
                return self._split_record(record, depth, forced_plane=None)
        return None

    # -- splitting -----------------------------------------------------------------------------

    def _split_record(
        self,
        record: _BARecord,
        depth: int,
        forced_plane: Optional[Tuple[int, float]],
    ) -> Optional[Tuple[_BARecord, _BARecord]]:
        """Split ``record``'s child page, returning the two replacement records.

        Returns None only for an unsplittable, non-forced leaf (all points
        identical), which remains oversized.
        """
        page = self._fetch(record.child, write=True)
        if page.is_leaf:
            plane = forced_plane or choose_leaf_split_plane(
                [coords for coords, _v in page.entries],
                self.dims,
                depth,
                record.box,
            )
            if plane is None:
                return None
            k, c = plane
            upper_page = self._new_leaf()
            lower_entries = [e for e in page.entries if e[0][k] < c]
            upper_page.entries = [e for e in page.entries if e[0][k] >= c]
            page.entries = lower_entries
            self.storage.buffer.access(upper_page.pid, write=True)
            return self._derive_split_records(
                record, k, c, page.pid, upper_page.pid, leaf_lower_entries=lower_entries
            )
        plane = forced_plane or choose_index_split_plane(
            [r.box for r in page.records], self.dims, depth, record.box
        )
        k, c = plane
        lower_records: List[_BARecord] = []
        upper_records: List[_BARecord] = []
        for r in page.records:
            if r.box.high[k] <= c:
                lower_records.append(r)
            elif r.box.low[k] >= c:
                upper_records.append(r)
            else:
                forced = self._split_record(r, depth + 1, forced_plane=(k, c))
                if forced is None:  # pragma: no cover - forced leaf splits succeed
                    raise TreeInvariantError("forced split failed")
                left, right = forced
                lower_records.append(left)
                upper_records.append(right)
        upper_page = self._new_index()
        upper_page.records = upper_records
        page.records = lower_records
        self.storage.buffer.access(upper_page.pid, write=True)
        return self._derive_split_records(
            record, k, c, page.pid, upper_page.pid, leaf_lower_entries=None
        )

    def _derive_split_records(
        self,
        record: _BARecord,
        k: int,
        c: float,
        lower_pid: int,
        upper_pid: int,
        leaf_lower_entries: Optional[List[_Entry]],
    ) -> Tuple[_BARecord, _BARecord]:
        """Figure 8's border surgery, generalized to d dimensions."""
        lower_box, upper_box = record.box.split_at(k, c)
        rb = _BARecord(lower_box, lower_pid, record.subtotal, [None] * self.dims)
        rt = _BARecord(upper_box, upper_pid, record.subtotal, [None] * self.dims)
        # Border k is valid for both halves: its points lie below the
        # original low edge in k, hence below both boxes.
        bk_entries = list(record.borders[k].collect())
        rb_bk = self._new_border()
        rb_bk.bulk_load(bk_entries)
        rb.borders[k] = rb_bk
        rt_bk_entries = list(bk_entries)
        rt_low = rt.box.low
        for j in range(self.dims):
            if j == k:
                continue
            entries_j = list(record.borders[j].collect())
            k_idx = k if j > k else k - 1  # position of dim k once j is dropped
            lower_j = [e for e in entries_j if e[0][k_idx] < c]
            upper_j = [e for e in entries_j if e[0][k_idx] >= c]
            rb_border = self._new_border()
            rb_border.bulk_load(lower_j)
            rb.borders[j] = rb_border
            rt_border = self._new_border()
            rt_border.bulk_load(upper_j)
            rt.borders[j] = rt_border
            # The lower part's points sit below rt's low edge in dimension
            # k; they migrate into rt.borders[k] (re-materializing the
            # dropped coordinate j as -inf) or straight into rt.subtotal
            # when dominated by rt's low corner.
            for proj, value in lower_j:
                full = _undrop(proj, j)
                if all(full[i] < rt_low[i] for i in range(self.dims)):
                    rt.subtotal = rt.subtotal + value
                else:
                    rt_bk_entries.append((_drop(full, k), value))
        if leaf_lower_entries is not None:
            # Leaf split: the lower page's own points join Ft's border k
            # ("the x-border of Ft ... plus the points in page(Fb)").  On
            # index splits the recursion covers them instead.
            for coords, value in leaf_lower_entries:
                rt_bk_entries.append((_drop(coords, k), value))
        rt_bk = self._new_border()
        rt_bk.bulk_load(rt_bk_entries)
        rt.borders[k] = rt_bk
        for border in record.borders:
            border.destroy()
        return rb, rt

    # -- bulk loading -----------------------------------------------------------------------------

    def bulk_load(
        self, items: Iterable[Tuple[Sequence[float], Value]], fill_factor: float = 0.9
    ) -> None:
        """Build the tree bottom-up from ``(point, value)`` pairs.

        Not described in the paper (its experiments insert incrementally);
        provided as the standard engineering extension that makes building
        multi-hundred-thousand-point indices practical.  The resulting tree
        satisfies exactly the same record/border invariants as one built by
        inserts.
        """
        if self._delegate is not None:
            self._delegate.bulk_load(items)
            return
        if not 0.0 < fill_factor <= 1.0:
            raise ValueError(f"fill_factor must be in (0, 1], got {fill_factor}")
        merged: dict = {}
        total = self.zero
        for point, value in items:
            coords = self._check_point(point)
            total = total + value
            if coords in merged:
                merged[coords] = merged[coords] + value
            else:
                merged[coords] = value
        entries: List[_Entry] = list(merged.items())
        self._free_record(self._root)
        self._total = total
        self.num_entries = len(entries)
        self._leaf_fill = max(2, int(self.leaf_capacity * fill_factor))
        self._index_fill = max(2, int(self.index_capacity * fill_factor))
        self._root = self._bulk_build(entries, self.universe, 0)

    def _bulk_build(self, entries: List[_Entry], box: Box, depth: int) -> _BARecord:
        if len(entries) <= self._leaf_fill:
            leaf = self._new_leaf()
            leaf.entries = entries
            self.storage.buffer.access(leaf.pid, write=True)
            return _BARecord(box, leaf.pid, self.zero, self._fresh_borders())
        needed_leaves = math.ceil(len(entries) / self._leaf_fill)
        fanout = min(self._index_fill, needed_leaves)
        parts = self._partition(entries, box, depth, fanout)
        if len(parts) == 1:
            # Unsplittable (all points identical): oversized leaf.
            leaf = self._new_leaf()
            leaf.entries = entries
            self.storage.buffer.access(leaf.pid, write=True)
            return _BARecord(box, leaf.pid, self.zero, self._fresh_borders())
        records = [
            self._bulk_build(part_entries, part_box, depth + 1)
            for part_box, part_entries in parts
        ]
        # Populate each record's subtotal and borders from its page-local
        # siblings' points — exactly what incremental inserts would have done.
        # Classification of every sibling point against every record is the
        # build's hot loop (O(records x points) per page); a vectorized
        # implementation handles scalar-valued loads, with the scalar
        # fallback covering generic value types.
        classified = _classify_page_vectorized(self, parts, records)
        if classified is None:
            for i, record in enumerate(records):
                subtotal = self.zero
                border_items: List[List[_Entry]] = [[] for _ in range(self.dims)]
                for other_idx, (_obox, other_entries) in enumerate(parts):
                    if other_idx == i:
                        continue
                    for coords, value in other_entries:
                        kind = self._classify(coords, record.box)
                        if kind == _SUBTOTAL:
                            subtotal = subtotal + value
                        elif isinstance(kind, tuple):
                            border_items[kind[1]].append((_drop(coords, kind[1]), value))
                record.subtotal = subtotal
                for j in range(self.dims):
                    if border_items[j]:
                        record.borders[j].bulk_load(border_items[j])
        page = self._new_index()
        page.records = records
        self.storage.buffer.access(page.pid, write=True)
        return _BARecord(box, page.pid, self.zero, self._fresh_borders())

    def _partition(
        self, entries: List[_Entry], box: Box, depth: int, fanout: int
    ) -> List[Tuple[Box, List[_Entry]]]:
        """Split entries into up to ``fanout`` disjoint sub-boxes by recursive halving."""
        if fanout <= 1 or len(entries) <= 1:
            return [(box, entries)]
        lower_fan = fanout // 2
        plane = self._quantile_plane(entries, box, depth, lower_fan / fanout)
        if plane is None:
            return [(box, entries)]
        k, c = plane
        lower_box, upper_box = box.split_at(k, c)
        lower = [e for e in entries if e[0][k] < c]
        upper = [e for e in entries if e[0][k] >= c]
        return self._partition(lower, lower_box, depth + 1, lower_fan) + (
            self._partition(upper, upper_box, depth + 1, fanout - lower_fan)
        )

    def _quantile_plane(
        self, entries: List[_Entry], box: Box, depth: int, fraction: float
    ) -> Optional[Tuple[int, float]]:
        order = [(depth + i) % self.dims for i in range(self.dims)]
        for dim in order:
            values = sorted(e[0][dim] for e in entries)
            target = min(len(values) - 1, max(1, int(len(values) * fraction)))
            candidate = values[target]
            if candidate <= values[0]:
                candidate = next((v for v in values[target:] if v > values[0]), None)
                if candidate is None:
                    continue
            if box.low[dim] < candidate < box.high[dim]:
                return dim, candidate
        return None

    # -- maintenance -----------------------------------------------------------------------------

    def collect(self) -> Iterator[_Entry]:
        """Yield every stored ``(point, value)`` (page accesses included)."""
        if self._delegate is not None:
            yield from self._delegate.collect_points()
            return
        yield from self._collect(self._root.child)

    def _collect(self, pid: int) -> Iterator[_Entry]:
        page = self._fetch(pid)
        if page.is_leaf:
            yield from page.entries
            return
        for record in page.records:
            yield from self._collect(record.child)

    def destroy(self) -> None:
        """Free every page and reset to an empty tree."""
        if self._delegate is not None:
            self._delegate.destroy()
            return
        self._free_record(self._root)
        root_page = self._new_leaf()
        self._root = _BARecord(self.universe, root_page.pid, self.zero, self._fresh_borders())
        self._total = self.zero
        self.num_entries = 0

    def release(self) -> None:
        """Free every page without recreating a root; the tree becomes unusable."""
        if self._delegate is not None:
            self._delegate.release()
            return
        self._free_record(self._root)
        self.num_entries = 0

    def _free_record(self, record: _BARecord) -> None:
        for border in record.borders:
            border.destroy()
        self._free_page(record.child)

    def _free_page(self, pid: int) -> None:
        page = self.storage.pager.get(pid)
        if not page.is_leaf:
            for record in page.records:
                self._free_record(record)
        else:
            pass
        self.storage.buffer.invalidate(pid)
        self.storage.pager.free(pid)

    # -- invariants ----------------------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Structural checks: disjoint boxes, coverage, containment, totals."""
        if self._delegate is not None:
            self._delegate.check_invariants()
            return
        count, total = self._check_page(self._root.child, self._root.box)
        if count != self.num_entries:
            raise TreeInvariantError(f"entry count mismatch: {count} != {self.num_entries}")
        if not values_equal(total, self._total, tol=1e-6):
            raise TreeInvariantError("tree total mismatch")

    def _check_page(self, pid: int, box: Box) -> Tuple[int, Value]:
        page = self.storage.pager.get(pid)
        if page.is_leaf:
            total = self.zero
            for coords, value in page.entries:
                if not box.contains_point(coords):
                    raise TreeInvariantError(f"leaf {pid} point {coords} outside {box}")
                total = total + value
            return len(page.entries), total
        if not page.records:
            raise TreeInvariantError(f"index page {pid} is empty")
        for i, a in enumerate(page.records):
            if not box.contains_box(a.box):
                raise TreeInvariantError(f"record box {a.box} escapes {box}")
            if len(a.borders) != self.dims:
                raise TreeInvariantError(f"record in page {pid} lacks borders")
            for b in page.records[i + 1 :]:
                inter = a.box.intersection(b.box)
                if inter is not None and inter.volume() > 0:
                    raise TreeInvariantError(f"records overlap in page {pid}: {a.box} / {b.box}")
        count = 0
        total = self.zero
        for record in page.records:
            sub_count, sub_total = self._check_page(record.child, record.box)
            count += sub_count
            total = total + sub_total
        return count, total

    def _check_point(self, point: Sequence[float]) -> Coords:
        coords = point if isinstance(point, tuple) else as_coords(point)
        if len(coords) != self.dims:
            raise DimensionMismatchError(f"point arity {len(coords)} != tree dims {self.dims}")
        return coords


def _classify_page_vectorized(tree: "BATree", parts, records) -> Optional[bool]:
    """Vectorized sibling classification for :meth:`BATree._bulk_build`.

    Implements exactly :meth:`BATree._classify` over all (record, point)
    pairs of one page with numpy comparisons; populates the records'
    subtotals and borders and returns True.  Returns None (caller falls
    back to the scalar loop) when numpy is unavailable or the values are
    not plain numbers.
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy ships with the test env
        return None
    all_entries = [e for _box, part_entries in parts for e in part_entries]
    if not all_entries or not isinstance(all_entries[0][1], (int, float)):
        return None
    dims = tree.dims
    points = np.array([coords for coords, _v in all_entries], dtype=np.float64)
    values = np.array([v for _coords, v in all_entries], dtype=np.float64)
    # Which part (sibling) each point belongs to, to exclude the own record.
    owner = np.repeat(np.arange(len(parts)), [len(p) for _b, p in parts])
    for i, record in enumerate(records):
        low = np.array(record.box.low)
        high = np.array(record.box.high)
        below = points < low              # strict, as in _classify
        n_below = below.sum(axis=1)
        sibling = owner != i
        over_high = points >= high
        n_over = over_high.sum(axis=1)
        first_below = below.argmax(axis=1)
        subtotal_mask = sibling & (n_below == dims)
        if subtotal_mask.any():
            record.subtotal = record.subtotal + float(values[subtotal_mask].sum())
        # Border j: some-but-not-all dims below, and within the high bound
        # everywhere except possibly the first below dimension.
        # A point over the high bound in any dimension is skipped; it can
        # never be over-high at its first-below dimension (below < low <=
        # high), so the check reduces to "no over-high anywhere".
        border_mask = sibling & (n_below > 0) & (n_below < dims) & (n_over == 0)
        if not border_mask.any():
            continue
        for j in range(dims):
            select = border_mask & (first_below == j)
            if not select.any():
                continue
            keep = [k for k in range(dims) if k != j]
            projected = points[np.ix_(select.nonzero()[0], keep)]
            items = [(tuple(row), float(v)) for row, v in zip(projected.tolist(), values[select])]
            record.borders[j].bulk_load(items)
    return True


def _drop(coords: Coords, j: int) -> Coords:
    """Project a point off dimension ``j``."""
    return coords[:j] + coords[j + 1 :]


def _undrop(proj: Coords, j: int) -> Coords:
    """Re-materialize a projected point, standing in ``-inf`` for dimension ``j``.

    Sound because every holder of the entry guarantees the true coordinate
    is below its box's low edge in ``j`` (see module docstring).
    """
    return proj[:j] + (float("-inf"),) + proj[j:]


def internal_cap_for_1d(index_capacity: Optional[int]) -> Optional[int]:
    """1-d delegation: k-d-B index capacities below the B+-tree minimum of 3 are bumped."""
    if index_capacity is None:
        return None
    return max(3, index_capacity)
