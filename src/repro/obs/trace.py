"""Hierarchical query tracing: spans with per-span I/O deltas and CPU time.

A :class:`Tracer` records a tree of :class:`Span` objects —
``box_sum`` → per-corner ``dominance_sum`` → node descents → buffer/WAL
events — mirroring exactly the cost decomposition the paper argues about
(2^d dominance-sums, one root-to-leaf path each, O(1) border queries per
level).  Every span snapshots the storage context's
:class:`~repro.storage.stats.IOCounter` on entry and exit, so a span's
``reads``/``hits``/``writes`` are the *inclusive* page traffic of the work
it encloses; ``self_reads`` etc. subtract the children, and the root span's
inclusive delta equals the buffer-pool counter delta of the whole query.

Tracing is **off by default** and activated per call-site::

    with tracing(counter=storage.counter) as tracer:
        index.box_sum(query)
    print(tracer.render())
    payload = tracer.to_dict()          # JSON-ready

Instrumented hot paths pay a single module-global ``None`` check while no
tracer is active; per-page buffer events additionally require the tracer to
be attached to the pool (:meth:`Tracer.attach_buffer`), which patches the
pool *instance* so the disabled path is completely untouched.

**Concurrency.** Activation stays process-wide (one tracer at a time), but
span *attachment* is thread-local: each thread entering spans on the active
tracer nests them on its own private stack, and a thread's outermost span
becomes a root in :attr:`Tracer.spans` (appended under a lock).  Worker
threads of :class:`repro.service.QueryService` therefore produce their own
well-formed span trees instead of corrupting the activating thread's stack.
Attribution caveats under concurrency: per-span I/O deltas snapshot a
*shared* counter, so spans overlapping in time double-count each other's
page traffic — wall time and span structure stay exact.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Version of the serialized trace format.
TRACE_SCHEMA_VERSION = 1

#: Hard cap on recorded events per span (drops are counted, not silent).
MAX_EVENTS_PER_SPAN = 256

#: The active tracer, read by every instrumentation hook.  Module-global on
#: purpose: hooks do ``trace._ACTIVE`` — one dict lookup — when disabled.
_ACTIVE: Optional["Tracer"] = None


class Span:
    """One node of the trace tree; usable as a context manager via Tracer.span."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "events",
        "dropped_events",
        "cpu_s",
        "wall_s",
        "reads",
        "hits",
        "writes",
        "error",
        "_tracer",
        "_c0",
        "_t0_cpu",
        "_t0_wall",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.children: List["Span"] = []
        self.events: List[Tuple[str, Dict[str, Any]]] = []
        self.dropped_events = 0
        self.cpu_s = 0.0
        self.wall_s = 0.0
        self.reads = 0
        self.hits = 0
        self.writes = 0
        self.error: Optional[str] = None
        self._tracer = tracer
        self._c0: Optional[Tuple[int, int, int]] = None
        self._t0_cpu = 0.0
        self._t0_wall = 0.0

    # -- lifecycle -------------------------------------------------------------

    def __enter__(self) -> "Span":
        tracer = self._tracer
        tracer._stack.append(self)
        counter = tracer.counter
        if counter is not None:
            self._c0 = (counter.reads, counter.hits, counter.writes)
        self._t0_cpu = time.process_time()
        self._t0_wall = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cpu_s = time.process_time() - self._t0_cpu
        self.wall_s = time.perf_counter() - self._t0_wall
        counter = self._tracer.counter
        if counter is not None and self._c0 is not None:
            self.reads = counter.reads - self._c0[0]
            self.hits = counter.hits - self._c0[1]
            self.writes = counter.writes - self._c0[2]
        if exc_type is not None:
            self.error = exc_type.__name__
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(self)
        else:
            # Roots from any thread land in the shared list; the stack
            # itself is thread-local so sibling threads never interleave.
            with self._tracer._spans_lock:
                self._tracer.spans.append(self)

    # -- derived I/O ------------------------------------------------------------

    @property
    def total_ios(self) -> int:
        """Reads plus writes — the unit of Figures 9a/9b."""
        return self.reads + self.writes

    @property
    def accesses(self) -> int:
        """All page touches (reads + hits) inside this span."""
        return self.reads + self.hits

    def self_io(self) -> Tuple[int, int, int]:
        """(reads, hits, writes) attributable to this span alone."""
        reads, hits, writes = self.reads, self.hits, self.writes
        for child in self.children:
            reads -= child.reads
            hits -= child.hits
            writes -= child.writes
        return reads, hits, writes

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; ``self_*`` fields are precomputed for consumers."""
        self_reads, self_hits, self_writes = self.self_io()
        out: Dict[str, Any] = {
            "name": self.name,
            "attrs": self.attrs,
            "cpu_ms": self.cpu_s * 1000.0,
            "wall_ms": self.wall_s * 1000.0,
            "reads": self.reads,
            "hits": self.hits,
            "writes": self.writes,
            "self_reads": self_reads,
            "self_hits": self_hits,
            "self_writes": self_writes,
            "children": [child.to_dict() for child in self.children],
        }
        if self.events:
            out["events"] = [{"type": name, **attrs} for name, attrs in self.events]
        if self.dropped_events:
            out["dropped_events"] = self.dropped_events
        if self.error is not None:
            out["error"] = self.error
        return out


class Tracer:
    """Collects a forest of spans around one storage context's counter.

    ``counter`` may be None (pure in-memory backends); spans then carry
    zero I/O deltas but still nest and time correctly.
    """

    def __init__(self, counter=None) -> None:
        self.counter = counter
        self.spans: List[Span] = []
        self._locals = threading.local()
        self._spans_lock = threading.Lock()
        self._patched_pools: List[Tuple[Any, Any]] = []

    @property
    def _stack(self) -> List[Span]:
        """This thread's private span stack (created on first touch)."""
        stack = getattr(self._locals, "stack", None)
        if stack is None:
            stack = []
            self._locals.stack = stack
        return stack

    # -- recording ---------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; use as ``with tracer.span("ba.dominance_sum"): ...``."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Attach a point event to the current span (dropped when no span is open)."""
        if not self._stack:
            return
        span = self._stack[-1]
        if len(span.events) >= MAX_EVENTS_PER_SPAN:
            span.dropped_events += 1
            return
        span.events.append((name, attrs))

    def current(self) -> Optional[Span]:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    # -- buffer attachment ----------------------------------------------------------

    def attach_buffer(self, pool) -> None:
        """Record one event per page access of ``pool`` while tracing.

        Patches the *instance*'s ``access`` method, so pools without an
        attached tracer — and every pool once :meth:`detach_buffers` ran —
        keep the completely uninstrumented class implementation.
        """
        original = pool.access
        counter = pool.counter

        def traced_access(pid: int, write: bool = False) -> None:
            r0 = counter.reads
            original(pid, write=write)
            if self._stack:
                kind = "read" if counter.reads > r0 else "hit"
                self.event("io", pid=pid, kind=kind, write=write)

        pool.access = traced_access
        self._patched_pools.append((pool, original))

    def detach_buffers(self) -> None:
        """Undo every :meth:`attach_buffer` patch."""
        while self._patched_pools:
            pool, _original = self._patched_pools.pop()
            try:
                del pool.access
            except AttributeError:
                pass

    # -- output -----------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The whole trace as a JSON-ready payload."""
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "spans": [span.to_dict() for span in self.spans],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialized trace (``json.loads`` of it feeds :func:`render_dict`)."""
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def render(self, max_depth: int = 12) -> str:
        """Human-readable text tree of the recorded spans."""
        return render_dict(self.to_dict(), max_depth=max_depth)


# -- rendering (works on parsed JSON, so dumps are self-contained) ---------------


def _render_span(span: Dict[str, Any], depth: int, max_depth: int, lines: List[str]) -> None:
    pad = "  " * depth
    attrs = span.get("attrs") or {}
    attr_text = (" [" + " ".join(f"{k}={v}" for k, v in attrs.items()) + "]" if attrs else "")
    error = f" error={span['error']}" if span.get("error") else ""
    lines.append(
        f"{pad}{span['name']}{attr_text}"
        f"  reads={span['reads']} hits={span['hits']} writes={span['writes']}"
        f" cpu={span['cpu_ms']:.3f}ms{error}"
    )
    events = span.get("events") or []
    if events:
        node_visits = sum(1 for e in events if e.get("type") == "node")
        ios = sum(1 for e in events if e.get("type") == "io")
        extra = span.get("dropped_events", 0)
        summary = []
        if node_visits:
            summary.append(f"{node_visits} node visit(s)")
        if ios:
            summary.append(f"{ios} page access(es)")
        others = len(events) - node_visits - ios
        if others:
            summary.append(f"{others} event(s)")
        if extra:
            summary.append(f"{extra} dropped")
        lines.append(f"{pad}  · {', '.join(summary)}")
    children = span.get("children") or []
    if children and depth + 1 >= max_depth:
        lines.append(f"{pad}  ...")
        return
    for child in children:
        _render_span(child, depth + 1, max_depth, lines)


def render_dict(payload: Dict[str, Any], max_depth: int = 12) -> str:
    """Render a trace payload (as produced by :meth:`Tracer.to_dict`)."""
    lines: List[str] = []
    for span in payload.get("spans", []):
        _render_span(span, 0, max_depth, lines)
    return "\n".join(lines)


def walk_spans(payload: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """Depth-first iterator over every span dict of a trace payload."""
    stack = list(payload.get("spans", []))
    while stack:
        span = stack.pop()
        yield span
        stack.extend(span.get("children", []))


# -- activation --------------------------------------------------------------------


def active() -> Optional[Tracer]:
    """The currently installed tracer, or None (the common, fast case)."""
    return _ACTIVE


def activate(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide active tracer."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a tracer is already active (tracing does not nest)")
    _ACTIVE = tracer
    return tracer


def deactivate() -> Optional[Tracer]:
    """Uninstall the active tracer (returns it); detaches patched pools."""
    global _ACTIVE
    tracer = _ACTIVE
    _ACTIVE = None
    if tracer is not None:
        tracer.detach_buffers()
    return tracer


class tracing:
    """``with tracing(counter=...) as tracer:`` — scoped activation.

    ``buffer`` (a :class:`~repro.storage.buffer.BufferPool`) additionally
    records one event per page access inside the traced region.
    """

    def __init__(self, counter=None, buffer=None) -> None:
        self._tracer = Tracer(counter=counter)
        self._buffer = buffer

    def __enter__(self) -> Tracer:
        activate(self._tracer)
        if self._buffer is not None:
            self._tracer.attach_buffer(self._buffer)
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        deactivate()
