"""Process-wide metrics registry: named counters, gauges and histograms.

The paper's experimental argument is carried entirely by *measured*
quantities — page I/Os, index sizes, modeled execution time — yet the seed
code-base accounted for them ad hoc: each :class:`~repro.storage.stats.IOCounter`
lived inside its own ``BufferPool`` and nothing aggregated across
structures, queries or processes.  This module centralizes that accounting:

* :class:`MetricsRegistry` holds named instruments (:class:`Counter`,
  :class:`Gauge`, :class:`Histogram`), each supporting label sets
  (``counter.inc(1, method="ba")``);
* a *pull* collector protocol adapts existing mutable stat holders without
  touching their hot increment paths — :class:`IOCounterCollector` wraps an
  ``IOCounter`` so ``BufferPool`` keeps doing plain ``counter.reads += 1``
  and the registry reads the totals at snapshot time (this is the adapter
  that replaces bespoke plumbing while keeping every existing caller
  working);
* a **no-op mode**: a disabled registry (``enabled=False`` or
  :func:`null_registry`) accepts the full API but records nothing, so
  instrumented library code pays one attribute check — or, for the shared
  null singleton, literally nothing — when observability is off.

The process-wide registry is obtained with :func:`get_registry`; it is
enabled by default because nothing hot pushes into it (hot-path accounting
stays in ``IOCounter`` and is only pulled).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: A single collected measurement: (metric name, labels, value).
Sample = Tuple[str, Dict[str, str], float]

#: Callback returning samples at collection time (the pull protocol).
Collector = Callable[[], Iterable[Sample]]

#: Default histogram bucket upper bounds (unit-agnostic; callers pick units).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"


class Instrument:
    """Base class: a named metric owning one value cell per label set."""

    kind = "untyped"

    __slots__ = ("name", "help", "_registry", "_values")

    def __init__(self, name: str, help: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.help = help
        self._registry = registry
        self._values: Dict[_LabelKey, float] = {}

    def value(self, **labels: str) -> float:
        """Current value for one label set (0 when never touched)."""
        return self._values.get(_label_key(labels), 0.0)

    def clear(self) -> None:
        """Drop every recorded value (the registry's :meth:`MetricsRegistry.reset`)."""
        self._values.clear()

    def samples(self) -> List[Sample]:
        """All (name, labels, value) cells of this instrument."""
        return [(self.name, dict(key), value) for key, value in sorted(self._values.items())]


class Counter(Instrument):
    """Monotonically increasing count (resettable only via the registry)."""

    kind = "counter"
    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (default 1) to the cell selected by ``labels``."""
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(Instrument):
    """A value that can go up and down (buffer residency, tree height...)."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: float, **labels: str) -> None:
        """Overwrite the cell selected by ``labels``."""
        if not self._registry.enabled:
            return
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Adjust the cell by ``amount`` (may be negative)."""
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount


def estimate_percentile(bounds: Sequence[float], counts: Sequence[int], q: float) -> float:
    """Estimate the ``q``-th percentile from fixed-bucket histogram state.

    ``bounds`` are the sorted bucket upper bounds and ``counts`` the
    per-bucket observation counts with the ``+inf`` overflow as the final
    slot (``len(counts) == len(bounds) + 1``) — exactly the shape
    :meth:`Histogram.bucket_counts` returns.  The estimate interpolates
    linearly inside the bucket containing the target rank (the classic
    ``histogram_quantile`` scheme): the first bucket interpolates from 0,
    and ranks landing in the overflow bucket clamp to the largest finite
    bound (the histogram records nothing finer out there).

    The estimate is exact whenever the true value sits on a bucket
    boundary and is otherwise off by at most the containing bucket's
    width — which is why latency buckets should be chosen to taper with
    the SLO of interest.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile q must be in [0, 1], got {q}")
    if len(counts) != len(bounds) + 1:
        raise ValueError(
            f"counts must have one overflow slot beyond bounds "
            f"({len(bounds) + 1} expected, got {len(counts)})"
        )
    total = sum(counts)
    if total <= 0:
        return 0.0
    rank = q * total
    cumulative = 0.0
    for i, count in enumerate(counts):
        if count <= 0:
            continue
        previous = cumulative
        cumulative += count
        if cumulative < rank:
            continue
        if i >= len(bounds):
            return float(bounds[-1]) if bounds else 0.0
        upper = float(bounds[i])
        lower = float(bounds[i - 1]) if i > 0 else 0.0
        if rank <= previous:
            return lower
        return lower + (upper - lower) * (rank - previous) / count
    return float(bounds[-1]) if bounds else 0.0


class Histogram(Instrument):
    """Bucketed distribution with sum and count, one series per label set."""

    kind = "histogram"
    __slots__ = ("buckets", "_series")

    def __init__(
        self,
        name: str,
        help: str,
        registry: "MetricsRegistry",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, registry)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name} buckets must be sorted and non-empty")
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        #: label key -> [per-bucket counts..., +inf count]
        self._series: Dict[_LabelKey, List[int]] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the matching bucket."""
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = [0] * (len(self.buckets) + 1)
            self._series[key] = series
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series[i] += 1
                break
        else:
            series[-1] += 1
        # _values doubles as the running sum; count is derived from buckets.
        self._values[key] = self._values.get(key, 0.0) + float(value)

    def count(self, **labels: str) -> int:
        """Number of observations for one label set."""
        return sum(self._series.get(_label_key(labels), ()))

    def sum(self, **labels: str) -> float:
        """Sum of observations for one label set."""
        return self.value(**labels)

    def bucket_counts(self, **labels: str) -> List[int]:
        """Cumulative-free per-bucket counts (last slot is the +inf overflow)."""
        return list(self._series.get(_label_key(labels), [0] * (len(self.buckets) + 1)))

    def percentile(self, q: float, **labels: str) -> float:
        """Bucket-boundary estimate of the ``q``-th percentile (0 when empty).

        See :func:`estimate_percentile` for the interpolation contract; the
        error is bounded by the width of the bucket containing the rank.
        """
        return estimate_percentile(self.buckets, self.bucket_counts(**labels), q)

    def clear(self) -> None:
        super().clear()
        self._series.clear()

    def samples(self) -> List[Sample]:
        out: List[Sample] = []
        for key, series in sorted(self._series.items()):
            labels = dict(key)
            out.append((f"{self.name}_count", labels, float(sum(series))))
            out.append((f"{self.name}_sum", labels, self._values.get(key, 0.0)))
        return out


class MetricsRegistry:
    """A namespace of instruments plus pull-collectors.

    ``enabled=False`` builds a registry in no-op mode: instruments exist and
    accept the full API but record nothing.  The flag is dynamic —
    :meth:`enable`/:meth:`disable` flip recording for every instrument
    already handed out (each ``inc``/``set``/``observe`` checks it once).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: Dict[str, Instrument] = {}
        self._collectors: List[Collector] = []

    # -- instrument construction ---------------------------------------------------

    def _register(self, cls, name: str, help: str, **kwargs) -> Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(f"metric {name!r} already registered as {existing.kind}")
                return existing
            instrument = cls(name, help, self, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the named counter (idempotent)."""
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the named gauge (idempotent)."""
        return self._register(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the named histogram (idempotent)."""
        return self._register(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Instrument]:
        """The instrument registered under ``name``, or None."""
        return self._instruments.get(name)

    def names(self) -> List[str]:
        """Sorted names of every registered instrument."""
        return sorted(self._instruments)

    # -- pull protocol ----------------------------------------------------------------

    def register_collector(self, collector: Collector) -> Collector:
        """Add a pull callback contributing samples at collection time."""
        self._collectors.append(collector)
        return collector

    def unregister_collector(self, collector: Collector) -> None:
        """Remove a previously registered collector (no-op if absent)."""
        try:
            self._collectors.remove(collector)
        except ValueError:
            pass

    # -- output ------------------------------------------------------------------------

    def collect(self) -> List[Sample]:
        """Every sample: instrument cells plus collector pulls."""
        out: List[Sample] = []
        for name in sorted(self._instruments):
            out.extend(self._instruments[name].samples())
        for collector in self._collectors:
            out.extend(collector())
        return out

    def snapshot(self) -> Dict[str, float]:
        """Flat ``"name{labels}" -> value`` view (stable keys for JSON dumps)."""
        return {
            name + _format_labels(_label_key(labels)): value
            for name, labels, value in self.collect()
        }

    def render(self) -> str:
        """Text exposition: ``# HELP``/``# TYPE`` headers plus one line per cell."""
        lines: List[str] = []
        seen_instruments = set()
        for name, labels, value in self.collect():
            base = name
            for suffix in ("_count", "_sum"):
                if base.endswith(suffix) and base[: -len(suffix)] in self._instruments:
                    base = base[: -len(suffix)]
            instrument = self._instruments.get(base)
            if instrument is not None and base not in seen_instruments:
                seen_instruments.add(base)
                if instrument.help:
                    lines.append(f"# HELP {base} {instrument.help}")
                lines.append(f"# TYPE {base} {instrument.kind}")
            lines.append(f"{name}{_format_labels(_label_key(labels))} {value:g}")
        return "\n".join(lines)

    # -- lifecycle ----------------------------------------------------------------------

    def reset(self) -> None:
        """Zero every instrument (collectors pull live state and are untouched)."""
        for instrument in self._instruments.values():
            instrument.clear()

    def enable(self) -> None:
        """Turn recording on for every instrument of this registry."""
        self.enabled = True

    def disable(self) -> None:
        """No-op mode: instruments stay usable but record nothing."""
        self.enabled = False


class IOCounterCollector:
    """Adapter publishing a live :class:`~repro.storage.stats.IOCounter`.

    The counter's owners (``BufferPool``, ``PathBuffer``) keep incrementing
    plain attributes — zero new cost on the page-access hot path — and the
    registry pulls ``reads``/``writes``/``hits`` whenever it collects.
    """

    METRIC = "repro_io"

    def __init__(self, counter, **labels: str) -> None:
        self.counter = counter
        self.labels = {k: str(v) for k, v in labels.items()}

    def __call__(self) -> List[Sample]:
        c = self.counter
        return [
            (f"{self.METRIC}_reads", dict(self.labels), float(c.reads)),
            (f"{self.METRIC}_writes", dict(self.labels), float(c.writes)),
            (f"{self.METRIC}_hits", dict(self.labels), float(c.hits)),
            (f"{self.METRIC}_total", dict(self.labels), float(c.reads + c.writes)),
        ]


def watch_storage(storage, registry: Optional["MetricsRegistry"] = None, **labels: str):
    """Register pull-collectors for one ``StorageContext``.

    Publishes the context's I/O counter (via :class:`IOCounterCollector`)
    plus page-count and footprint gauges.  Returns the collectors so callers
    can :meth:`~MetricsRegistry.unregister_collector` them later.
    """
    registry = registry if registry is not None else get_registry()
    io_collector = registry.register_collector(IOCounterCollector(storage.counter, **labels))

    def pages() -> List[Sample]:
        return [
            ("repro_storage_pages", dict(io_collector.labels), float(storage.num_pages)),
            ("repro_storage_bytes", dict(io_collector.labels), float(storage.size_bytes)),
            (
                "repro_buffer_resident_pages",
                dict(io_collector.labels),
                float(storage.buffer.resident_pages),
            ),
        ]

    registry.register_collector(pages)
    return [io_collector, pages]


# -- process-wide registry ---------------------------------------------------------

_GLOBAL = MetricsRegistry(enabled=True)
_NULL = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-wide registry (instrumented library code reports here)."""
    return _GLOBAL


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one (test support)."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = registry
    return previous


def null_registry() -> MetricsRegistry:
    """The shared always-disabled registry (hand it to code you want silent)."""
    return _NULL
