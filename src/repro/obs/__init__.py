"""Observability layer: metrics registry + hierarchical query tracing.

Two halves, both zero-cost when unused:

* :mod:`repro.obs.registry` — a process-wide :class:`MetricsRegistry` of
  named counters/gauges/histograms with label support, a pull-collector
  protocol adapting the existing :class:`~repro.storage.stats.IOCounter`
  plumbing (:class:`IOCounterCollector`, :func:`watch_storage`), and a
  no-op mode for silencing instrumented code;
* :mod:`repro.obs.trace` — a :class:`Tracer` recording span trees
  (``box_sum`` → per-corner ``dominance_sum`` → node descents → page I/O)
  with per-span I/O deltas and CPU time, JSON-serializable and renderable
  as a text tree.  Activate with :func:`tracing`; the high-level entry
  point is :func:`repro.core.explain.profile`.
"""

from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    estimate_percentile,
    IOCounterCollector,
    MetricsRegistry,
    Sample,
    get_registry,
    null_registry,
    set_registry,
    watch_storage,
)
from .trace import (
    MAX_EVENTS_PER_SPAN,
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    active,
    activate,
    deactivate,
    render_dict,
    tracing,
    walk_spans,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "estimate_percentile",
    "IOCounterCollector",
    "MetricsRegistry",
    "Sample",
    "get_registry",
    "null_registry",
    "set_registry",
    "watch_storage",
    "MAX_EVENTS_PER_SPAN",
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "active",
    "activate",
    "deactivate",
    "render_dict",
    "tracing",
    "walk_spans",
]
