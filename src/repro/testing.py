"""Validation harness for dominance-sum and box-sum implementations.

Downstream users adding a backend (or modifying one) can drive it through
the same randomized oracle comparison this repository's own test suite
uses::

    from repro.testing import check_dominance_index, check_box_sum_index

    report = check_dominance_index(lambda: MyIndex(dims=2), dims=2)
    assert report.ok, report

Each check builds the candidate and a brute-force oracle from the same
random workload, interleaves inserts (and bulk loads where supported) with
queries, and reports the first disagreement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from .core.geometry import Box
from .core.naive import NaiveBoxSum, NaiveDominanceSum
from .core.values import values_equal


@dataclass
class CheckReport:
    """Outcome of a validation run."""

    ok: bool = True
    checks: int = 0
    failures: List[str] = field(default_factory=list)

    def fail(self, message: str) -> None:
        self.ok = False
        self.failures.append(message)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        if self.ok:
            return f"CheckReport(ok, {self.checks} checks)"
        head = "; ".join(self.failures[:3])
        return f"CheckReport(FAILED {len(self.failures)}/{self.checks}: {head})"


def check_dominance_index(
    factory: Callable[[], object],
    dims: int,
    n_points: int = 300,
    n_queries: int = 100,
    seed: int = 0,
    span: float = 100.0,
    tol: float = 1e-6,
    use_bulk_load: bool = False,
) -> CheckReport:
    """Compare a dominance-sum implementation against the scan oracle.

    The workload includes duplicate points, negative values and query
    points off the data distribution; strictness at exact coordinates is
    probed explicitly.
    """
    rng = random.Random(seed)
    report = CheckReport()
    candidate = factory()
    oracle = NaiveDominanceSum(dims)
    points: List[Tuple[Tuple[float, ...], float]] = []
    for i in range(n_points):
        if points and rng.random() < 0.05:
            point, _v = points[rng.randrange(len(points))]  # duplicate
        else:
            point = tuple(rng.uniform(0, span) for _ in range(dims))
        value = rng.uniform(-3.0, 8.0)
        points.append((point, value))
    if use_bulk_load:
        candidate.bulk_load(points)  # type: ignore[attr-defined]
        oracle.bulk_load(points)
    else:
        for point, value in points:
            candidate.insert(point, value)  # type: ignore[attr-defined]
            oracle.insert(point, value)
    queries = [
        tuple(rng.uniform(-5, span + 5) for _ in range(dims)) for _ in range(n_queries)
    ]
    # Probe strictness: query exactly at stored coordinates.
    queries += [points[rng.randrange(len(points))][0] for _ in range(10)]
    for q in queries:
        report.checks += 1
        got = candidate.dominance_sum(q)  # type: ignore[attr-defined]
        expected = oracle.dominance_sum(q)
        if not values_equal(got, expected, tol=tol):
            report.fail(f"dominance_sum({q}): got {got}, expected {expected}")
    report.checks += 1
    if not values_equal(candidate.total(), oracle.total(), tol=tol):  # type: ignore[attr-defined]
        report.fail(f"total(): got {candidate.total()}, expected {oracle.total()}")  # type: ignore[attr-defined]
    return report


def check_box_sum_index(
    factory: Callable[[], object],
    dims: int,
    n_objects: int = 250,
    n_queries: int = 80,
    seed: int = 0,
    span: float = 100.0,
    max_side: float = 20.0,
    tol: float = 1e-6,
    use_bulk_load: bool = False,
    with_deletes: bool = True,
) -> CheckReport:
    """Compare a box-sum implementation against the scan oracle.

    Exercises intersection boundary cases (touching boxes, degenerate
    point-boxes) and, when ``with_deletes``, deletion as value negation.
    """
    rng = random.Random(seed)
    report = CheckReport()
    candidate = factory()
    oracle = NaiveBoxSum(dims)

    def random_object() -> Tuple[Box, float]:
        low = [rng.uniform(0, span - max_side) for _ in range(dims)]
        if rng.random() < 0.05:
            return Box(low, low), rng.uniform(0.5, 5.0)  # degenerate point
        high = [lo + rng.uniform(0, max_side) for lo in low]
        return Box(low, high), rng.uniform(0.5, 5.0)

    objects = [random_object() for _ in range(n_objects)]
    if use_bulk_load:
        candidate.bulk_load(objects)  # type: ignore[attr-defined]
        for box, value in objects:
            oracle.insert(box, value)
    else:
        for box, value in objects:
            candidate.insert(box, value)  # type: ignore[attr-defined]
            oracle.insert(box, value)
    live = list(objects)
    for i in range(n_queries):
        if with_deletes and live and i % 10 == 9:
            box, value = live.pop(rng.randrange(len(live)))
            candidate.delete(box, value)  # type: ignore[attr-defined]
            oracle.insert(box, -value)
        low = [rng.uniform(0, span) for _ in range(dims)]
        high = [lo + rng.uniform(0, span / 2) for lo in low]
        query = Box(low, high)
        report.checks += 1
        got = candidate.box_sum(query)  # type: ignore[attr-defined]
        expected = oracle.box_sum(query)
        if not values_equal(got, expected, tol=tol):
            report.fail(f"box_sum({query}): got {got}, expected {expected}")
    # Touching-boundary probes (the paper's asymmetric semantics).
    if live:
        box, value = live[0]
        for probe, should_hit in (
            (Box(box.high, tuple(h + 1.0 for h in box.high)), True),
            (Box(tuple(l - 1.0 for l in box.low), box.low), False),
        ):
            report.checks += 1
            got = candidate.box_sum(probe)  # type: ignore[attr-defined]
            expected = oracle.box_sum(probe)
            if not values_equal(got, expected, tol=tol):
                report.fail(
                    f"touching probe {probe} (expect hit={should_hit}): "
                    f"got {got}, expected {expected}"
                )
    return report
