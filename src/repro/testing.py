"""Validation harness for dominance-sum and box-sum implementations.

Downstream users adding a backend (or modifying one) can drive it through
the same randomized oracle comparison this repository's own test suite
uses::

    from repro.testing import check_dominance_index, check_box_sum_index

    report = check_dominance_index(lambda: MyIndex(dims=2), dims=2)
    assert report.ok, report

Each check builds the candidate and a brute-force oracle from the same
random workload, interleaves inserts (and bulk loads where supported) with
queries, and reports the first disagreement.

:func:`check_crash_recovery` is the durable path's counterpart: a crash
torture loop that replays an insert-and-checkpoint workload, killing the
simulated process at *every* write point in turn, and asserts the reopened
index always equals a committed oracle prefix.

:func:`check_failover` is the serving path's counterpart: a chaos torture
loop that runs a replicated cluster with one deterministically misbehaving
member per replica group and asserts every answer stays bit-identical to
an unsharded reference index, that a whole-group outage is loud (raise, or
an explicit :class:`~repro.resilience.partial.PartialResult` when opted
in), and that circuit breakers actually stop routing to a dead member and
re-admit it after it heals.

:func:`check_log_shipping` closes the loop for the replication log: a
seeded workload ships through a replica group, one member is poisoned
mid-stream, and the check asserts the log-driven recovery verbs restore
exact state — catch-up produces a bit-identical member, a bootstrapped
member answers like everyone else, and point-in-time recovery reproduces
the exact pre-fault answers.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from .core.geometry import Box
from .core.naive import NaiveBoxSum, NaiveDominanceSum
from .core.values import values_equal


@dataclass
class CheckReport:
    """Outcome of a validation run."""

    ok: bool = True
    checks: int = 0
    failures: List[str] = field(default_factory=list)

    def fail(self, message: str) -> None:
        self.ok = False
        self.failures.append(message)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        if self.ok:
            return f"CheckReport(ok, {self.checks} checks)"
        head = "; ".join(self.failures[:3])
        return f"CheckReport(FAILED {len(self.failures)}/{self.checks}: {head})"


def check_dominance_index(
    factory: Callable[[], object],
    dims: int,
    n_points: int = 300,
    n_queries: int = 100,
    seed: int = 0,
    span: float = 100.0,
    tol: float = 1e-6,
    use_bulk_load: bool = False,
) -> CheckReport:
    """Compare a dominance-sum implementation against the scan oracle.

    The workload includes duplicate points, negative values and query
    points off the data distribution; strictness at exact coordinates is
    probed explicitly.
    """
    rng = random.Random(seed)
    report = CheckReport()
    candidate = factory()
    oracle = NaiveDominanceSum(dims)
    points: List[Tuple[Tuple[float, ...], float]] = []
    for i in range(n_points):
        if points and rng.random() < 0.05:
            point, _v = points[rng.randrange(len(points))]  # duplicate
        else:
            point = tuple(rng.uniform(0, span) for _ in range(dims))
        value = rng.uniform(-3.0, 8.0)
        points.append((point, value))
    if use_bulk_load:
        candidate.bulk_load(points)  # type: ignore[attr-defined]
        oracle.bulk_load(points)
    else:
        for point, value in points:
            candidate.insert(point, value)  # type: ignore[attr-defined]
            oracle.insert(point, value)
    queries = [tuple(rng.uniform(-5, span + 5) for _ in range(dims)) for _ in range(n_queries)]
    # Probe strictness: query exactly at stored coordinates.
    queries += [points[rng.randrange(len(points))][0] for _ in range(10)]
    for q in queries:
        report.checks += 1
        got = candidate.dominance_sum(q)  # type: ignore[attr-defined]
        expected = oracle.dominance_sum(q)
        if not values_equal(got, expected, tol=tol):
            report.fail(f"dominance_sum({q}): got {got}, expected {expected}")
    report.checks += 1
    got_total = candidate.total()  # type: ignore[attr-defined]
    if not values_equal(got_total, oracle.total(), tol=tol):
        report.fail(f"total(): got {got_total}, expected {oracle.total()}")
    return report


def check_box_sum_index(
    factory: Callable[[], object],
    dims: int,
    n_objects: int = 250,
    n_queries: int = 80,
    seed: int = 0,
    span: float = 100.0,
    max_side: float = 20.0,
    tol: float = 1e-6,
    use_bulk_load: bool = False,
    with_deletes: bool = True,
) -> CheckReport:
    """Compare a box-sum implementation against the scan oracle.

    Exercises intersection boundary cases (touching boxes, degenerate
    point-boxes) and, when ``with_deletes``, deletion as value negation.
    """
    rng = random.Random(seed)
    report = CheckReport()
    candidate = factory()
    oracle = NaiveBoxSum(dims)

    def random_object() -> Tuple[Box, float]:
        low = [rng.uniform(0, span - max_side) for _ in range(dims)]
        if rng.random() < 0.05:
            return Box(low, low), rng.uniform(0.5, 5.0)  # degenerate point
        high = [lo + rng.uniform(0, max_side) for lo in low]
        return Box(low, high), rng.uniform(0.5, 5.0)

    objects = [random_object() for _ in range(n_objects)]
    if use_bulk_load:
        candidate.bulk_load(objects)  # type: ignore[attr-defined]
        for box, value in objects:
            oracle.insert(box, value)
    else:
        for box, value in objects:
            candidate.insert(box, value)  # type: ignore[attr-defined]
            oracle.insert(box, value)
    live = list(objects)
    for i in range(n_queries):
        if with_deletes and live and i % 10 == 9:
            box, value = live.pop(rng.randrange(len(live)))
            candidate.delete(box, value)  # type: ignore[attr-defined]
            oracle.insert(box, -value)
        low = [rng.uniform(0, span) for _ in range(dims)]
        high = [lo + rng.uniform(0, span / 2) for lo in low]
        query = Box(low, high)
        report.checks += 1
        got = candidate.box_sum(query)  # type: ignore[attr-defined]
        expected = oracle.box_sum(query)
        if not values_equal(got, expected, tol=tol):
            report.fail(f"box_sum({query}): got {got}, expected {expected}")
    # Touching-boundary probes (the paper's asymmetric semantics).
    if live:
        box, value = live[0]
        for probe, should_hit in (
            (Box(box.high, tuple(h + 1.0 for h in box.high)), True),
            (Box(tuple(lo - 1.0 for lo in box.low), box.low), False),
        ):
            report.checks += 1
            got = candidate.box_sum(probe)  # type: ignore[attr-defined]
            expected = oracle.box_sum(probe)
            if not values_equal(got, expected, tol=tol):
                report.fail(
                    f"touching probe {probe} (expect hit={should_hit}): "
                    f"got {got}, expected {expected}"
                )
    return report


def _crash_workload(n_inserts: int, seed: int) -> List[Tuple[float, float]]:
    """Deterministic keys and values with distinct prefix totals."""
    rng = random.Random(seed)
    keys = [float(i) for i in range(n_inserts)]
    rng.shuffle(keys)
    # Value i+1 makes every committed prefix's total unique, so the
    # recovered state identifies exactly one prefix length.
    return [(key, float(i + 1)) for i, key in enumerate(keys)]


def _remove_index_files(path: str) -> None:
    for candidate in (path, path + ".wal"):
        if os.path.exists(candidate):
            os.remove(candidate)


def check_crash_recovery(
    path: str,
    n_inserts: int = 10,
    modes: Sequence[str] = ("crash", "torn"),
    page_size: int = 512,
    seed: int = 0,
    tol: float = 1e-9,
) -> CheckReport:
    """Torture-test the durable index's crash recovery at every write point.

    The workload inserts ``n_inserts`` weighted keys into a
    :class:`~repro.durable.DurableAggIndex` at ``path``, checkpointing after
    each.  A dry run counts every mutating file operation (page file and
    WAL); then, for each fault ``mode`` and each operation index, the run is
    repeated from scratch with a simulated crash at exactly that operation.
    Reopening the survivor files must always yield a committed prefix of the
    workload — at least every checkpoint that completed before the crash,
    never a torn or mixed state — and must pass a checksum scrub.
    """
    from .durable import DurableAggIndex
    from .storage.faults import CrashPoint, FaultInjector, SimulatedCrashError

    report = CheckReport()
    items = _crash_workload(n_inserts, seed)
    prefix_totals = [0.0]
    for _key, value in items:
        prefix_totals.append(prefix_totals[-1] + value)

    def seed_empty_index() -> None:
        """The committed base state: a freshly created, empty index.

        Creation itself is not crash-atomic (there is no previous state to
        preserve), so it runs fault-free; every later transition is the
        WAL's responsibility.
        """
        _remove_index_files(path)
        DurableAggIndex.open(path, page_size=page_size).close()

    def run(crash_point: Optional[CrashPoint]) -> Tuple[FaultInjector, int]:
        """One workload attempt; returns the injector and checkpoints done."""
        injector = FaultInjector(crash_point)
        completed = 0
        try:
            index = DurableAggIndex.open(
                path, page_size=page_size, create=False, opener=injector.opener
            )
            try:
                for key, value in items:
                    index.insert(key, value)
                    index.checkpoint()
                    completed += 1
            finally:
                index.close()
        except SimulatedCrashError:
            pass  # the "process" died; survivor files are on disk
        return injector, completed

    seed_empty_index()
    dry_injector, completed = run(None)
    if completed != n_inserts:
        report.fail(f"dry run only committed {completed}/{n_inserts} inserts")
        return report
    total_ops = dry_injector.ops

    for mode in modes:
        for at_op in range(1, total_ops + 1):
            report.checks += 1
            seed_empty_index()
            injector, completed = run(CrashPoint(at_op=at_op, mode=mode))
            if not injector.fired:
                continue  # ops after the workload's last mutation
            label = f"{mode}@{at_op}"
            try:
                with DurableAggIndex.open(path, page_size=page_size, create=False) as survivor:
                    recovered = len(survivor)
                    got_total = survivor.total()
                    if not (completed <= recovered <= min(completed + 1, n_inserts)):
                        report.fail(
                            f"{label}: recovered {recovered} entries after "
                            f"{completed} committed checkpoints"
                        )
                        continue
                    expected = prefix_totals[recovered]
                    if not values_equal(got_total, expected, tol=tol):
                        report.fail(
                            f"{label}: total {got_total} != oracle prefix "
                            f"{expected} for {recovered} entries"
                        )
                        continue
                    # The recovered prefix must agree point-wise, not just
                    # in total: probe a few dominance sums.
                    prefix = items[:recovered]
                    for probe in (0.5, n_inserts / 2.0, float(n_inserts)):
                        want = sum(v for k, v in prefix if k < probe)
                        got = survivor.dominance_sum(probe)
                        if not values_equal(got, want, tol=tol):
                            report.fail(
                                f"{label}: dominance_sum({probe}) = {got}, "
                                f"oracle prefix says {want}"
                            )
                            break
                    survivor.verify()
            except Exception as exc:  # noqa: BLE001 - any failure is a finding
                report.fail(f"{label}: reopen/recovery raised {exc!r}")
    _remove_index_files(path)
    return report


def _failover_workload(
    dims: int, n_objects: int, seed: int, span: float = 100.0, max_side: float = 25.0
) -> List[Tuple[Box, float]]:
    """Deterministic boxes with small-integer weights.

    Integer weights keep every partial sum exactly representable, so the
    sharded merge is bit-identical to the unsharded sum regardless of
    addition order — which is what lets the chaos checks use ``==``.
    """
    rng = random.Random(seed)
    objects: List[Tuple[Box, float]] = []
    for _ in range(n_objects):
        low = [rng.uniform(0, span - max_side) for _ in range(dims)]
        high = [lo + rng.uniform(0, max_side) for lo in low]
        objects.append((Box(low, high), float(rng.randint(1, 9))))
    return objects


def check_failover(
    dims: int = 2,
    num_shards: int = 3,
    replicas: int = 1,
    n_objects: int = 90,
    n_batches: int = 25,
    batch_size: int = 4,
    modes: Sequence[str] = ("raise", "delay", "corrupt"),
    backend: str = "ba",
    seed: int = 0,
) -> CheckReport:
    """Torture-test the resilient serving path under deterministic chaos.

    Three phases, all seeded (same arguments ⇒ same run, bit for bit):

    1. **Exactness under failover** — for each fault ``mode``, a replicated
       cluster whose *primaries* all misbehave on a seeded schedule serves
       interleaved mutations and query batches; every answer must equal the
       unsharded reference index exactly (``==``, no tolerance — additive
       dominance-sum decomposition plus identical replicas make failover
       invisible in the bits).
    2. **Whole-group outage** — with every member of shard 0 dead, the
       default config must raise
       :class:`~repro.core.errors.ShardUnavailableError`; with
       ``partial_results=True`` it must return a
       :class:`~repro.resilience.partial.PartialResult` whose provably
       exact queries (no intersection with the dead shard's extent) match
       the reference — never a silently wrong bare float.
    3. **Breaker trip and heal** — a replica group with an always-failing
       primary must stop routing to it (trip open within the breaker
       window), serve exactly from the replica meanwhile, and re-admit the
       primary after its chaos is lifted and the cooldown elapses.
    """
    from .core.aggregator import BoxSumIndex
    from .core.errors import ShardUnavailableError
    from .obs.registry import MetricsRegistry
    from .resilience import (
        BreakerConfig,
        ChaosPlan,
        FaultyQueryService,
        PartialResult,
        ReplicaGroup,
        ResilienceConfig,
        chaos_member_wrapper,
    )
    from .service import QueryService
    from .shard import ShardedService

    report = CheckReport()
    rng = random.Random(seed)
    objects = _failover_workload(dims, n_objects, seed)

    def random_query() -> Box:
        low = [rng.uniform(0, 100.0) for _ in range(dims)]
        high = [lo + rng.uniform(0, 60.0) for lo in low]
        return Box(low, high)

    plans = {
        "raise": ChaosPlan(raise_rate=0.4),
        "delay": ChaosPlan(delay_rate=0.5, delay_s=0.0005),
        "hang": ChaosPlan(hang_rate=0.3, hang_s=0.05),
        "corrupt": ChaosPlan(corrupt_rate=0.4),
    }
    policy = ResilienceConfig(
        max_attempts=4,
        backoff_base_s=0.0,
        # A hang only resolves through a deadline; harmless for the rest.
        deadline_s=0.02 if "hang" in modes else None,
        breaker=BreakerConfig(window=8, min_requests=4, cooldown_s=0.05),
        seed=seed,
    )

    # -- phase 1: bit-exactness under per-member chaos -----------------------------
    for mode in modes:
        if mode not in plans:
            report.fail(f"unknown chaos mode {mode!r}")
            continue
        plan = plans[mode].with_seed(seed)
        reference = BoxSumIndex(dims, backend=backend)
        reference.bulk_load(objects)
        cluster = ShardedService(
            dims,
            num_shards,
            backend=backend,
            replicas=replicas,
            workers=0,
            partitioner="kd",
            registry=MetricsRegistry(),
            service_wrapper=chaos_member_wrapper(plan),
            resilience=policy,
        )
        try:
            cluster.bulk_load(objects)
            extra = _failover_workload(dims, n_batches, seed + 1)
            for i in range(n_batches):
                if i % 5 == 2:  # interleave mutations (fan out to every member)
                    box, value = extra[i]
                    cluster.insert(box, value)
                    reference.insert(box, value)
                elif i % 5 == 4:
                    box, value = objects[i % len(objects)]
                    cluster.delete(box, value)
                    reference.delete(box, value)
                queries = [random_query() for _ in range(batch_size)]
                got = cluster.box_sum_batch(queries)
                expected = [reference.box_sum(q) for q in queries]
                report.checks += 1
                if isinstance(got, PartialResult):
                    report.fail(f"{mode}@batch{i}: unexpected PartialResult {got}")
                elif list(got) != expected:
                    report.fail(
                        f"{mode}@batch{i}: chaos answers {list(got)} != "
                        f"reference {expected}"
                    )
            groups = cluster.resilience_stats()
            report.checks += 1
            if mode != "delay" and not any(g["failovers"] for g in groups):
                report.fail(f"{mode}: chaos never forced a failover (inert test?)")
        finally:
            cluster.close()

    # -- phase 2: whole-group outage is loud ---------------------------------------
    def dead_wrapper(service: QueryService, sid: int, member: int):
        if sid != 0:
            return service
        plan = ChaosPlan(raise_rate=1.0).with_seed(seed + member)
        return FaultyQueryService(service, plan)

    reference = BoxSumIndex(dims, backend=backend)
    reference.bulk_load(objects)
    for partial in (False, True):
        cluster = ShardedService(
            dims,
            num_shards,
            backend=backend,
            replicas=replicas,
            workers=0,
            partitioner="kd",
            registry=MetricsRegistry(),
            service_wrapper=dead_wrapper,
            resilience=ResilienceConfig(
                max_attempts=2, backoff_base_s=0.0, partial_results=partial, seed=seed
            ),
        )
        try:
            cluster.bulk_load(objects)
            # One full-span query guarantees the dead shard is contacted even
            # on object backends, whose router prunes shards whose extent
            # misses every query in the batch.
            queries = [Box([0.0] * dims, [100.0] * dims)] + [
                random_query() for _ in range(batch_size - 1)
            ]
            report.checks += 1
            if not partial:
                try:
                    cluster.box_sum_batch(queries)
                    report.fail("dead group without opt-in did not raise")
                except ShardUnavailableError:
                    pass
            else:
                got = cluster.box_sum_batch(queries)
                if not isinstance(got, PartialResult):
                    report.fail(f"dead group with opt-in returned {type(got).__name__}")
                elif got.missing != (0,):
                    report.fail(f"partial result blames shards {got.missing}, not 0")
                else:
                    for i in got.exact_indices():
                        report.checks += 1
                        if got.results[i] != reference.box_sum(queries[i]):
                            report.fail(
                                f"provably exact partial answer {got.results[i]} != "
                                f"reference {reference.box_sum(queries[i])}"
                            )
                    for i in range(len(queries)):
                        report.checks += 1
                        if got.results[i] > reference.box_sum(queries[i]):
                            report.fail(
                                f"partial sum {got.results[i]} exceeds full sum "
                                f"{reference.box_sum(queries[i])} (non-negative weights)"
                            )
        finally:
            cluster.close()

    # -- phase 3: breaker trips, contains, and heals --------------------------------
    now = [0.0]
    breaker_cfg = BreakerConfig(
        window=8, min_requests=3, failure_threshold=0.5, cooldown_s=1.0, half_open_probes=2
    )
    primary_index = BoxSumIndex(dims, backend=backend)
    replica_index = BoxSumIndex(dims, backend=backend)
    primary_index.bulk_load(objects)
    replica_index.bulk_load(objects)
    faulty = FaultyQueryService(
        QueryService(primary_index, registry=MetricsRegistry()),
        ChaosPlan(raise_rate=1.0).with_seed(seed),
    )
    healthy = QueryService(replica_index, registry=MetricsRegistry())
    group = ReplicaGroup(
        0,
        [faulty, healthy],
        config=ResilienceConfig(
            max_attempts=3, backoff_base_s=0.0, breaker=breaker_cfg, seed=seed
        ),
        registry=MetricsRegistry(),
        clock=lambda: now[0],
        sleep=lambda s: None,
    )
    try:
        reference = BoxSumIndex(dims, backend=backend)
        reference.bulk_load(objects)
        queries = [random_query() for _ in range(10)]
        for q in queries:
            report.checks += 1
            if group.box_sum(q) != reference.box_sum(q):
                report.fail(f"group answer under dead primary differs on {q}")
        report.checks += 1
        if group.breakers[0].state != "open":
            report.fail(
                f"always-failing primary's breaker is {group.breakers[0].state!r}, "
                "expected open"
            )
        calls_at_trip = faulty.calls
        for q in queries:
            group.box_sum(q)
        report.checks += 1
        if faulty.calls != calls_at_trip:
            report.fail(
                f"breaker did not stop routing: primary saw "
                f"{faulty.calls - calls_at_trip} calls while open"
            )
        # Heal: lift the chaos, let the cooldown elapse; half-open probes
        # must re-admit the primary and close the breaker.
        faulty.enabled = False
        now[0] += breaker_cfg.cooldown_s + 0.001
        for q in queries[: breaker_cfg.half_open_probes + 1]:
            report.checks += 1
            if group.box_sum(q) != reference.box_sum(q):
                report.fail(f"group answer during half-open probing differs on {q}")
        report.checks += 1
        if group.breakers[0].state != "closed":
            report.fail(
                f"healed primary's breaker is {group.breakers[0].state!r}, "
                "expected closed"
            )
        report.checks += 1
        if faulty.calls <= calls_at_trip:
            report.fail("healed primary never received traffic again")
    finally:
        group.close()
    return report


def check_log_shipping(
    directory: str,
    dims: int = 2,
    backend: str = "ba",
    n_objects: int = 60,
    n_mutations: int = 30,
    n_probes: int = 20,
    audit_probes: int = 16,
    seed: int = 0,
) -> CheckReport:
    """Torture-test log-shipping recovery end to end, bit for bit.

    A replica group of three members ships a seeded workload through a
    :class:`~repro.replog.ReplicationLog` rooted at ``directory``.  Four
    phases, all deterministic (integer weights keep every comparison
    exact, ``==`` with no tolerance):

    1. **Ship and checkpoint** — interleaved inserts and deletes fan out
       to every member and append to the log; a mid-stream checkpoint
       pins the pre-fault LSN and the answers the group gave there.
    2. **Poison and catch up** — one member's mutation is made to fail
       (poisoned: excluded from rotation); more mutations widen its lag;
       :meth:`~repro.resilience.group.ReplicaGroup.catch_up` must restore
       it from checkpoint + tail, pass the seeded audit and return it to
       rotation answering bit-identically to the reference.
    3. **Bootstrap** — :meth:`add_member` must seed a brand-new member to
       the head LSN that answers bit-identically from its first query.
    4. **Point-in-time recovery** — :meth:`recover_to` at the pre-fault
       LSN must reproduce the recorded pre-fault answers and the
       historical epoch exactly.
    """
    from .core.aggregator import BoxSumIndex
    from .obs.registry import MetricsRegistry
    from .replog import ReplicationLog
    from .resilience import ChaosPlan, FaultyQueryService, ReplicaGroup, ResilienceConfig
    from .service import QueryService

    report = CheckReport()
    rng = random.Random(seed)
    objects = _failover_workload(dims, n_objects, seed)
    mutations = _failover_workload(dims, n_mutations, seed + 1)
    probes = []
    for _ in range(n_probes):
        low = [rng.uniform(0, 100.0) for _ in range(dims)]
        high = [lo + rng.uniform(0, 60.0) for lo in low]
        probes.append(Box(low, high))

    registry = MetricsRegistry()

    def make_member() -> QueryService:
        return QueryService(BoxSumIndex(dims, backend=backend), registry=MetricsRegistry())

    reference = NaiveBoxSum(dims)
    replog = ReplicationLog(directory, registry=registry)
    victim = FaultyQueryService(
        make_member(), ChaosPlan(raise_rate=1.0, mutations=True).with_seed(seed)
    )
    victim.enabled = False  # armed only for the poisoning mutation
    group = ReplicaGroup(
        0,
        [make_member(), make_member(), victim],
        config=ResilienceConfig(max_attempts=3, backoff_base_s=0.0, seed=seed),
        registry=registry,
        replication_log=replog,
        member_factory=make_member,
    )
    historical = None
    try:
        # -- phase 1: ship and checkpoint ---------------------------------------
        group.bulk_load(objects)
        for box, value in objects:
            reference.insert(box, value)
        half = n_mutations // 2
        for i, (box, value) in enumerate(mutations[:half]):
            if i % 3 == 2:
                box, value = objects[i % len(objects)]
                group.delete(box, value)
                reference.insert(box, -value)
            else:
                group.insert(box, value)
                reference.insert(box, value)
        group.checkpoint()
        pre_fault_lsn = replog.head_lsn
        pre_fault_answers = list(group.box_sum_batch(probes))
        report.checks += 1
        if pre_fault_answers != [reference.box_sum(q) for q in probes]:
            report.fail("pre-fault group answers differ from the reference")

        # -- phase 2: poison one member, then catch it up -----------------------
        victim.enabled = True
        box, value = mutations[half]
        group.insert(box, value)
        reference.insert(box, value)
        victim.enabled = False
        report.checks += 1
        if group.stats()["member_states"][2] != "poisoned":
            report.fail("failed mutation did not poison the member")
        for box, value in mutations[half + 1 :]:
            group.insert(box, value)
            reference.insert(box, value)
        report.checks += 1
        lag = group.stats()["replica_lag"]
        if lag[2] == 0 or any(lag[:2]):
            report.fail(f"replica lag {lag} does not isolate the poisoned member")
        group.checkpoint()  # exercises retention with the member down
        restore = group.catch_up(2, audit_probes=audit_probes)
        report.checks += 1
        if restore is None:
            report.fail("catch_up returned None for a poisoned member")
        report.checks += 1
        if group.stats()["member_states"][2] == "poisoned":
            report.fail("caught-up member is still poisoned")
        expected = [reference.box_sum(q) for q in probes]
        for mid in range(group.num_members):
            report.checks += 1
            got = list(group.members[mid].box_sum_batch(probes))
            if got != expected:
                report.fail(f"member {mid} diverges from the reference after catch-up")

        # -- phase 3: bootstrap a brand-new member ------------------------------
        new_mid = group.add_member()
        report.checks += 1
        got = list(group.members[new_mid].box_sum_batch(probes))
        if got != expected:
            report.fail("bootstrapped member diverges from the reference")
        report.checks += 1
        epochs = {group.members[mid].epoch for mid in range(group.num_members)}
        if len(epochs) != 1:
            report.fail(f"members disagree on the epoch after recovery: {epochs}")

        # -- phase 4: point-in-time recovery ------------------------------------
        historical = group.recover_to(
            pre_fault_lsn, index_factory=lambda: BoxSumIndex(dims, backend=backend)
        )
        report.checks += 1
        if list(historical.box_sum_batch(probes)) != pre_fault_answers:
            report.fail("recover_to did not reproduce the pre-fault answers")
        report.checks += 1
        if historical.epoch != replog.epoch_at(pre_fault_lsn):
            report.fail(
                f"recovered epoch {historical.epoch} != invariant "
                f"{replog.epoch_at(pre_fault_lsn)}"
            )
    finally:
        if historical is not None:
            historical.close()
        group.close()
        replog.close()
    return report
